#include "core/pipelines_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::core
{

namespace
{

/** Content entropy for the codec: busier frames compress worse. */
double
contentComplexity(const PipelineConfig &cfg,
                  const scene::FrameWorkload &frame)
{
    const double rel =
        static_cast<double>(frame.totalTriangles()) /
        static_cast<double>(cfg.benchmark.meanTriangles);
    return clamp(rel, 0.7, 1.4);
}

/** Full-frame stereo render job for @p frame. */
gpu::RenderJob
fullFrameJob(const PipelineConfig &cfg,
             const scene::FrameWorkload &frame)
{
    gpu::RenderJob job;
    job.triangles = frame.totalTriangles() * 2;
    job.shadedPixels =
        static_cast<double>(cfg.benchmark.pixelsPerEye()) * 2.0;
    job.batches = cfg.benchmark.numBatches * 2;
    job.shadingCost = cfg.benchmark.shadingCost;
    job.frequencyScale = cfg.gpuFrequencyScale;
    return job;
}

}  // namespace

// ---------------------------------------------------------------------
// LocalPipeline
// ---------------------------------------------------------------------

LocalPipeline::LocalPipeline(const PipelineConfig &cfg) : Pipeline(cfg) {}

FrameStats
LocalPipeline::simulateFrame(const scene::FrameWorkload &frame,
                             Seconds issue_time)
{
    FrameStats s;
    const Seconds cpu_done =
        cpu_.serve(issue_time, cfg().controlLogicTime);

    const gpu::RenderJob job = fullFrameJob(cfg(), frame);
    s.tLocalRender = gpuModel_.renderSeconds(job);
    s.localTriangles = job.triangles;
    const Seconds render_done = gpu_.serve(cpu_done, s.tLocalRender);

    // ATW runs on the GPU and contends with rendering (Fig. 4-(c)).
    const double stereo_pixels = job.shadedPixels;
    s.tAtw = gpu::postprocess::atwTime(gpuModel_, stereo_pixels,
                                       cfg().postCosts) /
             cfg().gpuFrequencyScale;
    const Seconds atw_done = gpu_.serve(render_done, s.tAtw);

    s.displayTime = atw_done + cfg().displayLatency;
    s.mtpLatency = cfg().sensorLatency + (s.displayTime - issue_time);
    s.gpuBusy = s.tLocalRender + s.tAtw;
    s.renderedResolutionFraction = 1.0;
    s.energy = frameEnergy(s.gpuBusy, 0.0, 0.0,
                           std::max(s.gpuBusy,
                                    vr_requirements::kFrameBudget),
                           false, false);
    return s;
}

Seconds
LocalPipeline::bottleneckFree() const
{
    return gpu_.nextFree();
}

// ---------------------------------------------------------------------
// RemotePipeline
// ---------------------------------------------------------------------

RemotePipeline::RemotePipeline(const PipelineConfig &cfg)
    : Pipeline(cfg)
{
}

FrameStats
RemotePipeline::simulateFrame(const scene::FrameWorkload &frame,
                              Seconds issue_time)
{
    FrameStats s;
    const Seconds cpu_done =
        cpu_.serve(issue_time, cfg().controlLogicTime);

    const gpu::RenderJob job = fullFrameJob(cfg(), frame);
    const Seconds request_at = cpu_done + cfg().uplinkLatency;
    s.tRemoteRender = server_.renderSeconds(job);
    const Seconds render_done =
        serverBusy_.serve(request_at, s.tRemoteRender);

    // Hardware encode is sliced and overlaps rendering; only a tail
    // is exposed.
    const double pixels = job.shadedPixels;
    const Seconds encode_tail = 0.3 * codec_.encodeTime(pixels);
    const Seconds encoded = render_done + encode_tail;

    net::LayerPayload payload;
    payload.renderReady = encoded;
    payload.pixels = pixels;
    payload.compressed = codec_.compressedSize(
        pixels, contentComplexity(cfg(), frame), 1.0);
    const net::StreamResult streamed =
        stream_.streamFrame({payload});

    s.transmittedBytes = streamed.totalBytes;
    s.tNetwork = streamed.networkTime;
    s.tDecode = codec_.decodeTime(pixels);
    s.tRemoteBranch = streamed.allDecoded - cpu_done;

    // Local GPU only reprojects.
    s.tAtw = gpu::postprocess::atwTime(gpuModel_, pixels,
                                       cfg().postCosts) /
             cfg().gpuFrequencyScale;
    const Seconds atw_done =
        gpu_.serve(std::max(streamed.allDecoded, cpu_done), s.tAtw);

    s.displayTime = atw_done + cfg().displayLatency;
    s.mtpLatency = cfg().sensorLatency + (s.displayTime - issue_time);
    s.gpuBusy = s.tAtw;
    s.renderedResolutionFraction = 1.0;
    s.energy = frameEnergy(
        s.gpuBusy, s.tNetwork, s.tDecode,
        std::max(s.tRemoteBranch, vr_requirements::kFrameBudget),
        false, false);
    return s;
}

Seconds
RemotePipeline::bottleneckFree() const
{
    return std::max(stream_.linkNextFree(), serverBusy_.nextFree());
}

// ---------------------------------------------------------------------
// StaticPipeline
// ---------------------------------------------------------------------

StaticPipeline::StaticPipeline(const PipelineConfig &cfg,
                               const StaticCollabConfig &collab)
    : Pipeline(cfg), collab_(collab),
      posePredictor_(collab.predictor)
{
}

double
StaticPipeline::mispredictRate() const
{
    return framesSeen_
               ? static_cast<double>(mispredicts_) /
                     static_cast<double>(framesSeen_)
               : 0.0;
}

FrameStats
StaticPipeline::simulateFrame(const scene::FrameWorkload &frame,
                              Seconds issue_time)
{
    FrameStats s;
    framesSeen_++;
    const Seconds cpu_done =
        cpu_.serve(issue_time, cfg().controlLogicTime);

    // ---- Local branch: the pre-defined interactive objects. -------
    gpu::RenderJob local;
    local.triangles = frame.interactiveTriangles() * 2;
    double coverage = 0.0;
    std::uint32_t interactive_batches = 0;
    for (const auto &b : frame.batches) {
        if (b.interactive) {
            coverage += b.screenCoverage;
            interactive_batches++;
        }
    }
    coverage = clamp(coverage, 0.01, 0.6);
    local.shadedPixels =
        static_cast<double>(cfg().benchmark.pixelsPerEye()) * 2.0 *
        coverage;
    local.batches = std::max(1u, interactive_batches * 2);
    local.shadingCost = cfg().benchmark.shadingCost;
    local.frequencyScale = cfg().gpuFrequencyScale;
    // Composition + ATW share the GPU with rendering here, so the
    // render suffers the contention inflation (Fig. 4-(c)).
    s.tLocalRender = gpuModel_.renderSeconds(local) *
                     (1.0 + cfg().postCosts.contentionInflation);
    s.localTriangles = local.triangles;
    const Seconds local_done = gpu_.serve(cpu_done, s.tLocalRender);

    // ---- Remote branch: full-resolution background + depth map,
    //      prefetched prefetchAhead frames in advance. --------------
    const double yaw = frame.motionSeen.head.orientation.x;
    posePredictor_.observe(frame.motionSeen);
    predictedYaw_.push_back(
        posePredictor_
            .predict(static_cast<double>(collab_.prefetchAhead) *
                     vr_requirements::kFrameBudget)
            .head.orientation.x);

    const double bg_pixels =
        static_cast<double>(cfg().benchmark.pixelsPerEye()) * 2.0;
    gpu::RenderJob bg = fullFrameJob(cfg(), frame);
    bg.triangles =
        (frame.totalTriangles() - frame.interactiveTriangles()) * 2;
    s.tRemoteRender = server_.renderSeconds(bg);

    auto fetch = [&](Seconds request_at) {
        const Seconds render_done =
            serverBusy_.serve(request_at + cfg().uplinkLatency,
                              s.tRemoteRender);
        net::LayerPayload payload;
        payload.pixels = bg_pixels;
        payload.compressed = codec_.compressedSize(
            bg_pixels, contentComplexity(cfg(), frame), 1.0,
            /*with_depth=*/true);
        payload.renderReady =
            render_done + 0.3 * codec_.encodeTime(bg_pixels);
        const net::StreamResult streamed =
            stream_.streamFrame({payload});
        s.tNetwork += streamed.networkTime;
        s.transmittedBytes += streamed.totalBytes;
        return streamed.allDecoded;
    };

    // Was the background we prefetched prefetchAhead frames ago for
    // THIS frame still valid?  The prediction breaks when the head
    // moved away from the predicted pose, or when an interaction
    // changed scene state the server could not anticipate.
    bool hit = false;
    Seconds bg_ready = 0.0;
    if (predictedYaw_.size() > collab_.prefetchAhead &&
        !prefetchReady_.empty()) {
        const double predicted_yaw =
            predictedYaw_[predictedYaw_.size() - 1 -
                          collab_.prefetchAhead];
        const double err = std::abs(yaw - predicted_yaw);
        hit = err <= collab_.mispredictThresholdDeg &&
              !frame.motionSeen.interacting;
        bg_ready = prefetchReady_.front();
        prefetchReady_.erase(prefetchReady_.begin());
    }
    if (!hit) {
        mispredicts_++;
        bg_ready = fetch(cpu_done);  // demand fetch, fully exposed
    }

    // Issue the speculative prefetch for frame i + prefetchAhead; it
    // occupies the server/link/decoder now and its result becomes
    // usable (or stale) when that frame arrives.
    prefetchReady_.push_back(fetch(cpu_done));

    s.tDecode = codec_.decodeTime(bg_pixels);
    s.tRemoteBranch = std::max(0.0, bg_ready - cpu_done);

    // ---- Composition (depth-based embedding) + ATW, on the GPU. ---
    s.tComposition =
        gpu::postprocess::depthCompositionTime(gpuModel_, bg_pixels,
                                               cfg().postCosts) /
        cfg().gpuFrequencyScale;
    s.tAtw = gpu::postprocess::atwTime(gpuModel_, bg_pixels,
                                       cfg().postCosts) /
             cfg().gpuFrequencyScale;
    // Fig. 4-(c): launch/drain, preemption and cache-refill stalls
    // around the GPU-resident composition/ATW kernels.
    const Seconds comp_start = std::max(local_done, bg_ready) +
                               0.6 * (s.tComposition + s.tAtw);
    const Seconds comp_done =
        gpu_.serve(comp_start, s.tComposition + s.tAtw);

    s.displayTime = comp_done + cfg().displayLatency;
    s.mtpLatency = cfg().sensorLatency + (s.displayTime - issue_time);
    s.gpuBusy = s.tLocalRender + s.tComposition + s.tAtw;
    s.renderedResolutionFraction = 1.0;  // nothing is subsampled
    s.energy = frameEnergy(
        s.gpuBusy, s.tNetwork, s.tDecode,
        std::max({s.gpuBusy, s.tNetwork,
                  vr_requirements::kFrameBudget}),
        false, false);
    return s;
}

Seconds
StaticPipeline::bottleneckFree() const
{
    return std::max(gpu_.nextFree(), stream_.linkNextFree());
}

}  // namespace qvr::core
