/**
 * @file
 * Public entry points of the Q-VR library.
 *
 *  - DesignPoint / makePipeline: factory over every design the paper
 *    evaluates, so benches and applications build comparisons in two
 *    lines;
 *  - ExperimentSpec / runExperiment: one call from (benchmark,
 *    network, GPU frequency, frame count) to a full PipelineResult —
 *    the shared harness under every table and figure;
 *  - QvrSystem: the downstream-facing facade — configure once, feed
 *    per-frame motion + workload, get back the partition decision and
 *    the frame's timing/energy accounting.
 */

#ifndef QVR_CORE_QVR_SYSTEM_HPP
#define QVR_CORE_QVR_SYSTEM_HPP

#include <memory>
#include <string>

#include "core/pipeline_foveated.hpp"
#include "core/pipelines_baseline.hpp"
#include "motion/trace.hpp"

namespace qvr::core
{

/** Every design point of Section 6, plus the hardened variant. */
enum class DesignPoint
{
    Local,     ///< Baseline: traditional local rendering
    Remote,    ///< remote-only rendering
    Static,    ///< static collaborative rendering
    Ffr,       ///< fixed collaborative foveated rendering
    Dfr,       ///< LIWC only
    SwQvr,     ///< pure-software Q-VR
    Qvr,       ///< full Q-VR (LIWC + UCA)
    /** Q-VR with the encoder-aligned compressed frame layout: the
     *  periphery ships as a cropped middle window + reduced-res
     *  outer frame (32-px-aligned buffers) instead of analytic
     *  annulus pixel counts. */
    QvrCompressed,
    Resilient, ///< Q-VR + degradation controller (fault studies)
};

/** Display name matching the paper's figures. */
const char *designName(DesignPoint design);

/** Build the pipeline for @p design under @p cfg. */
std::unique_ptr<Pipeline> makePipeline(DesignPoint design,
                                       const PipelineConfig &cfg);

/** One experiment cell: benchmark x environment x duration. */
struct ExperimentSpec
{
    std::string benchmark = "Doom3-H";
    net::ChannelConfig channel = net::ChannelConfig::wifi();
    double gpuFrequencyScale = 1.0;   ///< 1.0/0.8/0.6 = 500/400/300 MHz
    std::size_t numFrames = 300;
    std::uint64_t seed = 1;

    /** Fault timeline for the cell (empty = fault-free). */
    fault::FaultSchedule faults;
    /** Retry budget for lost layer transfers. */
    net::RetryPolicy retryPolicy;

    /** Resolve to a full PipelineConfig. */
    PipelineConfig toConfig() const;
};

/** Generate the motion trace + workload stream for @p spec. */
std::vector<scene::FrameWorkload>
generateExperimentWorkload(const ExperimentSpec &spec);

/** Run @p design on @p spec end to end. */
PipelineResult runExperiment(DesignPoint design,
                             const ExperimentSpec &spec);

/** Per-frame output of the facade. */
struct QvrFrameOutput
{
    double e1 = 0.0;             ///< chosen fovea radius (deg)
    double e2 = 0.0;             ///< periphery split (deg)
    FrameStats stats;            ///< full accounting
};

/**
 * Downstream-facing facade over the full Q-VR pipeline.
 *
 * Typical use:
 * @code
 *   auto cfg = qvr::core::PipelineConfig::forBenchmark(
 *       qvr::scene::findBenchmark("GRID"));
 *   qvr::core::QvrSystem system(cfg);
 *   for (auto &frame : workload)
 *       auto out = system.renderFrame(frame);
 * @endcode
 */
class QvrSystem
{
  public:
    explicit QvrSystem(const PipelineConfig &cfg);

    /** Process one frame through the collaborative pipeline. */
    QvrFrameOutput renderFrame(const scene::FrameWorkload &frame);

    /** The underlying pipeline (advanced diagnostics). */
    const FoveatedPipeline &pipeline() const { return pipeline_; }

  private:
    FoveatedPipeline pipeline_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_QVR_SYSTEM_HPP
