/**
 * @file
 * Unified Composition and ATW unit (UCA), Section 4.2.
 *
 * The baseline pipeline runs foveated composition (average the layer
 * contributions, Eq. 3-left) and then ATW (lens-distortion remap +
 * bilinear filter, Eq. 3-right) as two GPU kernels.  Both are linear
 * filters, so they can be reordered and fused into one trilinear pass
 * that samples the inputs once (Eq. 4).  Q-VR implements that pass in
 * a dedicated SoC unit (4 MULs + 8 SIMD4 FPUs per instance, 2
 * instances at 500 MHz; 532 cycles per 32x32 border tile), which
 * frees the GPU cores and lets non-overlapping tiles start before
 * rendering fully completes.
 *
 * This module carries BOTH models:
 *  - a functional model operating on real pixel buffers, used to
 *    verify the Eq. 3 = Eq. 4 reordering numerically;
 *  - a timing model used by the pipeline simulations.
 */

#ifndef QVR_CORE_UCA_HPP
#define QVR_CORE_UCA_HPP

#include <cstdint>

#include "common/types.hpp"
#include "core/framebuffer.hpp"
#include "foveation/compressed_layout.hpp"
#include "sim/resource.hpp"

namespace qvr::core
{

/** Pixel-space description of the layer partition for one eye. */
struct PixelPartition
{
    double centerX = 0.0;      ///< fovea centre, pixels
    double centerY = 0.0;
    double foveaRadius = 0.0;  ///< e1 in pixels
    double middleRadius = 0.0; ///< e2 in pixels
    double blendBand = 16.0;   ///< cross-fade band width, pixels
};

/** Inputs to one composition+ATW pass. */
struct UcaFrameInputs
{
    const Image *fovea = nullptr;   ///< native resolution
    const Image *middle = nullptr;  ///< subsampled by sMiddle
    const Image *outer = nullptr;   ///< subsampled by sOuter
    double sMiddle = 1.0;           ///< per-dimension subsample factor
    double sOuter = 1.0;
    PixelPartition partition;
    /** ATW reprojection, pixels (small-rotation approximation of the
     *  lens-distortion + pose-update remap). */
    Vec2 atwShift;
};

/**
 * Inputs to a composition+ATW pass over ENCODER-ALIGNED compressed
 * layers (foveation/compressed_layout.hpp): the periphery buffers
 * cover only the native-space window their LayerTransform maps, at
 * their own per-axis scales, instead of being full-frame at a
 * uniform factor.  The legacy UcaFrameInputs is the special case
 * map = LayerTransform::uniform(s).
 */
struct CompressedUcaInputs
{
    const Image *fovea = nullptr;   ///< native resolution, full frame
    const Image *middle = nullptr;  ///< cropped + subsampled buffer
    const Image *outer = nullptr;   ///< full frame, subsampled buffer
    foveation::LayerTransform middleMap;
    foveation::LayerTransform outerMap;
    PixelPartition partition;
    Vec2 atwShift;
    std::int32_t width = 0;   ///< native output dimensions
    std::int32_t height = 0;
};

/** Per-eccentricity blend weights of the three layers (sum to 1). */
struct LayerWeights
{
    double fovea = 0.0;
    double middle = 0.0;
    double outer = 0.0;
};

/** Smooth cross-fade weights at radius @p r from the fovea centre. */
LayerWeights layerWeights(const PixelPartition &p, double r);

/**
 * Reference path (Eq. 3): foveated composition at native resolution,
 * THEN ATW as a separate bilinear resample.  Two passes, two
 * samplings — what the GPU kernels do.
 *
 * This and ucaUnified() are the deliberately simple scalar loops the
 * equivalence tests are written against.  Production rendering goes
 * through the tiled, thread-parallel PixelEngine
 * (core/pixel_engine.hpp), which is bit-identical to these by
 * contract and an order of magnitude faster.
 */
Image sequentialCompositeAtw(const UcaFrameInputs &in);

/**
 * Unified path (Eq. 4): one pass over output pixels; each samples
 * every contributing layer once at the reprojected coordinate
 * (bilinear within a layer + inter-layer blend = trilinear).
 * Scalar reference — see PixelEngine for the fast tiled version.
 */
Image ucaUnified(const UcaFrameInputs &in);

/**
 * Scalar reference of the unified pass over compressed layers: the
 * same per-pixel arithmetic as ucaUnified() with each periphery
 * sample taken at ((sx - origin) / scale) in its cropped buffer.
 * Oracle for PixelEngine::ucaUnifiedCompressed.
 */
Image ucaUnifiedCompressed(const CompressedUcaInputs &in);

/** Tile classes the UCA scheduler distinguishes. */
enum class TileClass
{
    FoveaInterior,      ///< fovea data only (bilinear)
    PeripheryInterior,  ///< periphery data only (bilinear)
    Border,             ///< spans a layer boundary (trilinear)
};

/** Classify the @p tile_size tile whose top-left pixel is (x0, y0). */
TileClass classifyTile(const PixelPartition &p, std::int32_t x0,
                       std::int32_t y0, std::int32_t tile_size);

/** UCA hardware parameters (Section 4.2/4.3). */
struct UcaConfig
{
    std::uint32_t units = 2;
    Hertz frequency = fromMHz(500.0);
    std::uint32_t tileSize = 32;
    /** Cycles per 32x32 border tile (trilinear), per Section 4.3. */
    Cycles borderTileCycles = 532;
    /** Cycles per interior tile (bilinear only). */
    Cycles interiorTileCycles = 300;
    /** Area/power per instance from McPAT (Section 4.3). */
    double areaMm2 = 1.6;
    double powerW = 0.094;
};

/** Outcome of scheduling one eye's tiles onto the UCA instances. */
struct UcaTimingResult
{
    Seconds done = 0.0;          ///< last tile completed
    Seconds busy = 0.0;          ///< summed tile service time
    std::uint32_t borderTiles = 0;
    std::uint32_t interiorTiles = 0;
};

/**
 * Timing model: tiles become eligible when their source layers are
 * ready (periphery tiles at @p periphery_ready, fovea and border
 * tiles additionally need @p fovea_ready) and are served by the UCA
 * instances in eligibility order.
 */
class UcaTimingModel
{
  public:
    explicit UcaTimingModel(const UcaConfig &cfg = UcaConfig{});

    const UcaConfig &config() const { return cfg_; }

    UcaTimingResult processFrame(std::int32_t width, std::int32_t height,
                                 const PixelPartition &partition,
                                 Seconds fovea_ready,
                                 Seconds periphery_ready);

    /**
     * High-fidelity variant: every tile is dispatched individually
     * to the instances in eligibility order instead of as two
     * aggregate buckets.  ~100x more serve operations; used by the
     * cross-check tests and available when per-tile accuracy
     * matters.  Same contract as processFrame.
     */
    UcaTimingResult processFrameDetailed(
        std::int32_t width, std::int32_t height,
        const PixelPartition &partition, Seconds fovea_ready,
        Seconds periphery_ready);

  private:
    UcaConfig cfg_;
    sim::MultiServerResource units_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_UCA_HPP
