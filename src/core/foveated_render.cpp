#include "core/foveated_render.hpp"

#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "core/pixel_engine.hpp"

namespace qvr::core
{

namespace
{

/** Rasterise @p scene into a (width/s, height/s) buffer by scaling
 *  screen coordinates — how a reduced-resolution layer renders. */
Image
renderScaled(const std::vector<RasterTriangle> &scene,
             std::int32_t width, std::int32_t height, double s)
{
    const auto w = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(std::lround(width / s)));
    const auto h = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(std::lround(height / s)));
    const double sx = static_cast<double>(w) / width;
    const double sy = static_cast<double>(h) / height;

    TileRasterizer raster(w, h);
    raster.clear();
    for (RasterTriangle t : scene) {
        t.v0.x *= sx;
        t.v0.y *= sy;
        t.v1.x *= sx;
        t.v1.y *= sy;
        t.v2.x *= sx;
        t.v2.y *= sy;
        raster.draw(t);
    }
    return raster.color();
}

/** Rasterise @p scene into one compressed layer buffer: screen
 *  coordinates go through the layer's native->texel map, so buffer
 *  texel (u + 0.5, v + 0.5) sees exactly the geometry that native
 *  coordinate (origin + (u + 0.5) * scale, ...) would. */
Image
renderLayer(const std::vector<RasterTriangle> &scene,
            const foveation::CompressedLayer &L)
{
    TileRasterizer raster(L.bufWidth, L.bufHeight);
    raster.clear();
    for (RasterTriangle t : scene) {
        t.v0.x = (t.v0.x - L.map.originX) / L.map.scaleX;
        t.v0.y = (t.v0.y - L.map.originY) / L.map.scaleY;
        t.v1.x = (t.v1.x - L.map.originX) / L.map.scaleX;
        t.v1.y = (t.v1.y - L.map.originY) / L.map.scaleY;
        t.v2.x = (t.v2.x - L.map.originX) / L.map.scaleX;
        t.v2.y = (t.v2.y - L.map.originY) / L.map.scaleY;
        raster.draw(t);
    }
    return raster.color();
}

}  // namespace

double
psnrInDisc(const Image &a, const Image &b, double cx, double cy,
           double radius, bool inside)
{
    QVR_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                "psnrInDisc requires equal-size images");
    double mse = 0.0;
    std::uint64_t n = 0;
    const double r2 = radius * radius;
    for (std::int32_t y = 0; y < a.height(); y++) {
        const Rgb *ra = a.rowSpan(y);
        const Rgb *rb = b.rowSpan(y);
        for (std::int32_t x = 0; x < a.width(); x++) {
            const double dx = x + 0.5 - cx;
            const double dy = y + 0.5 - cy;
            const bool in = dx * dx + dy * dy <= r2;
            if (in != inside)
                continue;
            const Rgb d = ra[x] - rb[x];
            mse += static_cast<double>(d.r) * d.r +
                   static_cast<double>(d.g) * d.g +
                   static_cast<double>(d.b) * d.b;
            n++;
        }
    }
    if (n == 0)
        return std::numeric_limits<double>::infinity();
    mse /= static_cast<double>(n) * 3.0;
    if (mse <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / mse);
}

FoveatedRenderResult
renderFoveated(const std::vector<RasterTriangle> &scene,
               std::int32_t width, std::int32_t height,
               const PixelPartition &partition, double s_middle,
               double s_outer, Vec2 atw_shift, std::size_t threads)
{
    QVR_REQUIRE(s_middle >= 1.0 && s_outer >= 1.0,
                "subsample factors must be >= 1");

    FoveatedRenderResult out;

    // Native reference (fovea layer uses the same buffer: Q-VR
    // renders the fovea at full resolution with no approximation).
    const Image native = renderScaled(scene, width, height, 1.0);
    const Image middle = renderScaled(scene, width, height, s_middle);
    const Image outer = renderScaled(scene, width, height, s_outer);

    UcaFrameInputs in;
    in.fovea = &native;
    in.middle = &middle;
    in.outer = &outer;
    in.sMiddle = s_middle;
    in.sOuter = s_outer;
    in.partition = partition;
    in.atwShift = atw_shift;

    // The tiled engine is bit-identical to the scalar ucaUnified()
    // at every thread count, so PSNR numbers are unaffected by it.
    PixelEngine engine(threads);
    out.composite = engine.ucaUnified(in);

    // Reference with the same reprojection applied, so the PSNR
    // isolates foveation error rather than the warp itself.
    Image reference = engine.resampleShift(native, atw_shift);

    out.psnrOverall = psnr(out.composite, reference);
    out.psnrFovea =
        psnrInDisc(out.composite, reference, partition.centerX,
                   partition.centerY,
                   partition.foveaRadius - partition.blendBand,
                   /*inside=*/true);
    out.psnrPeriphery =
        psnrInDisc(out.composite, reference, partition.centerX,
                   partition.centerY,
                   partition.foveaRadius + partition.blendBand,
                   /*inside=*/false);
    out.native = std::move(reference);
    return out;
}

CompressedRenderResult
renderFoveatedCompressed(const std::vector<RasterTriangle> &scene,
                         std::int32_t width, std::int32_t height,
                         const PixelPartition &partition,
                         double s_middle, double s_outer,
                         Vec2 atw_shift, std::size_t threads)
{
    QVR_REQUIRE(s_middle >= 1.0 && s_outer >= 1.0,
                "subsample factors must be >= 1");

    foveation::CompressedLayoutParams lp;
    lp.centerX = partition.centerX;
    lp.centerY = partition.centerY;
    lp.foveaRadius = partition.foveaRadius;
    lp.middleRadius = partition.middleRadius;
    lp.blendBand = partition.blendBand;
    lp.sMiddle = s_middle;
    lp.sOuter = s_outer;
    lp.frameWidth = width;
    lp.frameHeight = height;

    CompressedRenderResult out;
    out.layout = foveation::makeCompressedLayout(lp);

    const Image native = renderScaled(scene, width, height, 1.0);
    const Image middle = renderLayer(scene, out.layout.middle);
    const Image outer = renderLayer(scene, out.layout.outer);

    CompressedUcaInputs in;
    in.fovea = &native;
    in.middle = &middle;
    in.outer = &outer;
    in.middleMap = out.layout.middle.map;
    in.outerMap = out.layout.outer.map;
    in.partition = partition;
    in.atwShift = atw_shift;
    in.width = width;
    in.height = height;

    PixelEngine engine(threads);
    out.composite = engine.ucaUnifiedCompressed(in);

    Image reference = engine.resampleShift(native, atw_shift);
    out.psnrOverall = psnr(out.composite, reference);
    out.psnrFovea =
        psnrInDisc(out.composite, reference, partition.centerX,
                   partition.centerY,
                   partition.foveaRadius - partition.blendBand,
                   /*inside=*/true);
    out.psnrPeriphery =
        psnrInDisc(out.composite, reference, partition.centerX,
                   partition.centerY,
                   partition.foveaRadius + partition.blendBand,
                   /*inside=*/false);
    out.native = std::move(reference);
    return out;
}

}  // namespace qvr::core
