/**
 * @file
 * Runtime SIMD backend selection for the pixel kernels.
 *
 * Every backend is bit-exact against the scalar oracle (the tests
 * enforce maxAbsDiff == 0), so dispatch is purely a performance
 * decision.  Selection order:
 *
 *   1. setBackend() override (benches/tests), if set;
 *   2. the QVR_SIMD environment variable: auto|avx2|neon|scalar —
 *      an explicit backend that is not compiled in or not supported
 *      by the CPU is a hard error, never a silent downgrade;
 *   3. the QVR_SIMD_DEFAULT compile definition (CMake override);
 *   4. "auto": the best backend the host supports.
 */

#ifndef QVR_CORE_SIMD_DISPATCH_HPP
#define QVR_CORE_SIMD_DISPATCH_HPP

#include <string>

namespace qvr::core::simd
{

enum class Backend
{
    Scalar = 0,
    Avx2 = 1,
    Neon = 2,
};

/** Stable lower-case name ("scalar", "avx2", "neon"). */
const char *backendName(Backend b);

/** True when the backend's kernels were compiled into this binary. */
bool backendCompiled(Backend b);

/** True when the backend is compiled in AND the CPU supports it. */
bool backendSupported(Backend b);

/**
 * Parse "auto"/"scalar"/"avx2"/"neon".  "auto" resolves to the best
 * supported backend; a named backend that is unsupported on this
 * host panics (explicit requests must not silently degrade).
 */
Backend parseBackend(const std::string &name);

/** The effective backend per the selection order above. */
Backend dispatch();

/** Force a backend (must be supported); used by benches and tests. */
void setBackend(Backend b);

/** Drop the setBackend() override, returning to env/default. */
void clearBackendOverride();

}  // namespace qvr::core::simd

#endif  // QVR_CORE_SIMD_DISPATCH_HPP
