/**
 * @file
 * NEON backend: 4-wide bilinear and trilinear blend-band tile
 * kernels, bit-exact against the scalar oracle.
 *
 * Same discipline as the AVX2 TU: double coordinate math done per
 * lane in scalar (one IEEE op per reference op, in the reference
 * order), float lerps via explicit vmulq/vaddq — never vfmaq, and
 * the whole tree is built with -ffp-contract=off so the scalar
 * reference does not fuse either — weights from the shared scalar
 * blendWeightsSpan(), masked accumulation on the double weight's
 * > 0.0 comparison, scalar tails.  The horizontal tap pipeline is
 * hoisted to tile level and reused across rows.
 *
 * NEON is baseline on AArch64, so this TU needs no special flags —
 * but everything still sits in an anonymous namespace for symmetry
 * with the AVX2 TU's ODR rules.
 */

#include "core/simd/kernels.hpp"

#ifdef QVR_SIMD_COMPILED_NEON

#include <arm_neon.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace qvr::core::simd
{

namespace
{

/** Widest x-chunk the stack-resident tap cache covers (pixels). */
constexpr std::int32_t kChunk = 256;
constexpr std::int32_t kBlocks = kChunk / 4;

inline std::int32_t
clampi(std::int32_t v, std::int32_t lo, std::int32_t hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Row-invariant vertical context of one layer. */
struct RowCtx
{
    const float *row0 = nullptr;
    const float *row1 = nullptr;
    float wy = 0.0f;
};

RowCtx
makeRowCtx(const LayerRaster &L, double ly)
{
    const double fy = ly - 0.5;
    const auto y0 = static_cast<std::int32_t>(std::floor(fy));
    RowCtx c;
    c.wy = static_cast<float>(fy - y0);
    c.row0 = L.pixels +
        static_cast<std::size_t>(clampi(y0, 0, L.height - 1)) *
            L.width * 3;
    c.row1 = L.pixels +
        static_cast<std::size_t>(clampi(y0 + 1, 0, L.height - 1)) *
            L.width * 3;
    return c;
}

/** Horizontal taps for 4 lanes: clamped element offsets of the R
 *  channel of both x taps, plus the lerp weights. */
struct LaneTaps
{
    std::int32_t ia[4];  ///< 3 * clamped xi
    std::int32_t ib[4];  ///< 3 * clamped (xi + 1)
    float32x4_t wx;
    float32x4_t omwx;
};

LaneTaps
makeLaneTaps(std::int32_t x, double shiftX, const LayerMap &m,
             std::int32_t w)
{
    LaneTaps t;
    float wxArr[4];
    for (int i = 0; i < 4; i++) {
        const double sx = (x + i) + 0.5 - shiftX;
        const double fx = (sx - m.originX) / m.scaleX - 0.5;
        const auto xi = static_cast<std::int32_t>(std::floor(fx));
        wxArr[i] = static_cast<float>(fx - xi);
        t.ia[i] = 3 * clampi(xi, 0, w - 1);
        t.ib[i] = 3 * clampi(xi + 1, 0, w - 1);
    }
    t.wx = vld1q_f32(wxArr);
    t.omwx = vsubq_f32(vdupq_n_f32(1.0f), t.wx);
    return t;
}

/** 4 lanes x 3 channels of bilinear samples for one layer/row. */
inline void
lerpBlock(const RowCtx &ctx, const LaneTaps &t, float32x4_t vwy,
          float32x4_t vomwy, float32x4_t out[3])
{
    for (int ch = 0; ch < 3; ch++) {
        float l00[4], l10[4], l01[4], l11[4];
        for (int i = 0; i < 4; i++) {
            l00[i] = ctx.row0[t.ia[i] + ch];
            l10[i] = ctx.row0[t.ib[i] + ch];
            l01[i] = ctx.row1[t.ia[i] + ch];
            l11[i] = ctx.row1[t.ib[i] + ch];
        }
        const float32x4_t c00 = vld1q_f32(l00);
        const float32x4_t c10 = vld1q_f32(l10);
        const float32x4_t c01 = vld1q_f32(l01);
        const float32x4_t c11 = vld1q_f32(l11);
        const float32x4_t top = vaddq_f32(vmulq_f32(c00, t.omwx),
                                          vmulq_f32(c10, t.wx));
        const float32x4_t bot = vaddq_f32(vmulq_f32(c01, t.omwx),
                                          vmulq_f32(c11, t.wx));
        out[ch] = vaddq_f32(vmulq_f32(top, vomwy),
                            vmulq_f32(bot, vwy));
    }
}

/** Interleaved RGB store of 4 pixels. */
inline void
storeInterleaved(float *dst, const float32x4_t ch[3])
{
    float32x4x3_t v;
    v.val[0] = ch[0];
    v.val[1] = ch[1];
    v.val[2] = ch[2];
    vst3q_f32(dst, v);
}

/** Weighted, masked accumulation of one layer into the lane accs. */
inline void
accumulateLayer(const RowCtx &ctx, const LaneTaps &t,
                const float *wArr, const std::uint32_t *mArr,
                float32x4_t acc[3])
{
    const uint32x4_t mask = vld1q_u32(mArr);
    if (vmaxvq_u32(mask) == 0u)
        return;  // whole block skips this layer, like the reference
    const float32x4_t vwy = vdupq_n_f32(ctx.wy);
    const float32x4_t vomwy = vdupq_n_f32(1.0f - ctx.wy);
    const float32x4_t wv = vld1q_f32(wArr);
    float32x4_t smp[3];
    lerpBlock(ctx, t, vwy, vomwy, smp);
    for (int ch = 0; ch < 3; ch++) {
        const uint32x4_t term = vandq_u32(
            vreinterpretq_u32_f32(vmulq_f32(smp[ch], wv)), mask);
        acc[ch] = vaddq_f32(acc[ch], vreinterpretq_f32_u32(term));
    }
}

}  // namespace

void
bilinearTileNeon(const BilinearTileArgs &a)
{
    LaneTaps taps[kBlocks];
    for (std::int32_t cx0 = a.span.x0; cx0 < a.span.x1;
         cx0 += kChunk) {
        const std::int32_t cx1 =
            cx0 + kChunk < a.span.x1 ? cx0 + kChunk : a.span.x1;
        const std::int32_t nblocks = (cx1 - cx0) / 4;
        const std::int32_t vecEnd = cx0 + nblocks * 4;
        for (std::int32_t b = 0; b < nblocks; b++)
            taps[b] = makeLaneTaps(cx0 + b * 4, a.shiftX, a.map,
                                   a.src.width);

        for (std::int32_t y = a.span.y0; y < a.span.y1; y++) {
            const double ly =
                (y + 0.5 - a.shiftY - a.map.originY) / a.map.scaleY;
            const RowCtx ctx = makeRowCtx(a.src, ly);
            const float32x4_t vwy = vdupq_n_f32(ctx.wy);
            const float32x4_t vomwy = vdupq_n_f32(1.0f - ctx.wy);
            const float32x4_t vone = vdupq_n_f32(1.0f);
            const float32x4_t vzero = vdupq_n_f32(0.0f);
            float *row = a.outBase +
                static_cast<std::size_t>(y) * a.outStride * 3;
            for (std::int32_t b = 0; b < nblocks; b++) {
                float32x4_t smp[3];
                lerpBlock(ctx, taps[b], vwy, vomwy, smp);
                if (a.composeOne) {
                    // 0 + sample * 1.0f, matching the blend path's
                    // one-hot arithmetic bit for bit.
                    for (int ch = 0; ch < 3; ch++)
                        smp[ch] = vaddq_f32(
                            vzero, vmulq_f32(smp[ch], vone));
                }
                storeInterleaved(
                    row + static_cast<std::size_t>(cx0 + b * 4) * 3,
                    smp);
            }
            if (vecEnd < cx1) {
                BilinearTileArgs tail = a;
                tail.span = TileSpan{vecEnd, y, cx1, y + 1};
                bilinearTileScalar(tail);
            }
        }
    }
}

void
blendTileNeon(const BlendTileArgs &a)
{
    LaneTaps tapsF[kBlocks], tapsM[kBlocks], tapsO[kBlocks];
    double sx[kChunk];
    float wF[kChunk], wM[kChunk], wO[kChunk];
    std::uint32_t mF[kChunk], mM[kChunk], mO[kChunk];

    for (std::int32_t cx0 = a.span.x0; cx0 < a.span.x1;
         cx0 += kChunk) {
        const std::int32_t cx1 =
            cx0 + kChunk < a.span.x1 ? cx0 + kChunk : a.span.x1;
        const std::int32_t nblocks = (cx1 - cx0) / 4;
        const std::int32_t vecEnd = cx0 + nblocks * 4;
        const std::int32_t nvec = nblocks * 4;
        for (std::int32_t i = 0; i < nvec; i++)
            sx[i] = (cx0 + i) + 0.5 - a.shiftX;
        for (std::int32_t b = 0; b < nblocks; b++) {
            tapsF[b] = makeLaneTaps(cx0 + b * 4, a.shiftX,
                                    a.foveaMap, a.fovea.width);
            tapsM[b] = makeLaneTaps(cx0 + b * 4, a.shiftX,
                                    a.middleMap, a.middle.width);
            tapsO[b] = makeLaneTaps(cx0 + b * 4, a.shiftX,
                                    a.outerMap, a.outer.width);
        }

        for (std::int32_t y = a.span.y0; y < a.span.y1; y++) {
            const double sy = y + 0.5 - a.shiftY;
            const RowCtx ctxF = makeRowCtx(
                a.fovea,
                (sy - a.foveaMap.originY) / a.foveaMap.scaleY);
            const RowCtx ctxM = makeRowCtx(
                a.middle,
                (sy - a.middleMap.originY) / a.middleMap.scaleY);
            const RowCtx ctxO = makeRowCtx(
                a.outer,
                (sy - a.outerMap.originY) / a.outerMap.scaleY);
            blendWeightsSpan(a.geom, sx, sy, nvec, wF, wM, wO,
                             mF, mM, mO);
            float *row = a.outBase +
                static_cast<std::size_t>(y) * a.outStride * 3;
            for (std::int32_t b = 0; b < nblocks; b++) {
                float32x4_t acc[3];
                acc[0] = vdupq_n_f32(0.0f);
                acc[1] = vdupq_n_f32(0.0f);
                acc[2] = vdupq_n_f32(0.0f);
                accumulateLayer(ctxF, tapsF[b], wF + b * 4,
                                mF + b * 4, acc);
                accumulateLayer(ctxM, tapsM[b], wM + b * 4,
                                mM + b * 4, acc);
                accumulateLayer(ctxO, tapsO[b], wO + b * 4,
                                mO + b * 4, acc);
                storeInterleaved(
                    row + static_cast<std::size_t>(cx0 + b * 4) * 3,
                    acc);
            }
            if (vecEnd < cx1) {
                BlendTileArgs tail = a;
                tail.span = TileSpan{vecEnd, y, cx1, y + 1};
                blendTileScalar(tail);
            }
        }
    }
}

}  // namespace qvr::core::simd

#endif  // QVR_SIMD_COMPILED_NEON
