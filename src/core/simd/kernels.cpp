/**
 * @file
 * Scalar reference kernels + backend router.
 *
 * The scalar tile kernels here are the generalized (LayerMap-aware)
 * forms of the PR-2 engine loops; with LayerMap::uniform(s) they are
 * operation-for-operation identical to the historical code, so the
 * engine's output stays byte-identical to the pre-SIMD binaries.
 */

#include "core/simd/kernels.hpp"

#include <cmath>

#include "core/uca.hpp"

namespace qvr::core::simd
{

namespace
{

inline std::int32_t
clampi(std::int32_t v, std::int32_t lo, std::int32_t hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Image::sampleBilinear on a raw raster, same ops, same order. */
inline void
sampleRaster(const LayerRaster &L, double x, double y, float &outR,
             float &outG, float &outB)
{
    const double fx = x - 0.5;
    const double fy = y - 0.5;
    const auto x0 = static_cast<std::int32_t>(std::floor(fx));
    const auto y0 = static_cast<std::int32_t>(std::floor(fy));
    const float wx = static_cast<float>(fx - x0);
    const float wy = static_cast<float>(fy - y0);
    const std::int32_t xa = clampi(x0, 0, L.width - 1);
    const std::int32_t xb = clampi(x0 + 1, 0, L.width - 1);
    const std::int32_t ya = clampi(y0, 0, L.height - 1);
    const std::int32_t yb = clampi(y0 + 1, 0, L.height - 1);
    const float *r0 =
        L.pixels + static_cast<std::size_t>(ya) * L.width * 3;
    const float *r1 =
        L.pixels + static_cast<std::size_t>(yb) * L.width * 3;
    const std::size_t ia = static_cast<std::size_t>(xa) * 3;
    const std::size_t ib = static_cast<std::size_t>(xb) * 3;
    const float *c00 = r0 + ia;
    const float *c10 = r0 + ib;
    const float *c01 = r1 + ia;
    const float *c11 = r1 + ib;
    const float omwx = 1.0f - wx;
    const float omwy = 1.0f - wy;
    const float topR = c00[0] * omwx + c10[0] * wx;
    const float topG = c00[1] * omwx + c10[1] * wx;
    const float topB = c00[2] * omwx + c10[2] * wx;
    const float botR = c01[0] * omwx + c11[0] * wx;
    const float botG = c01[1] * omwx + c11[1] * wx;
    const float botB = c01[2] * omwx + c11[2] * wx;
    outR = topR * omwy + botR * wy;
    outG = topG * omwy + botG * wy;
    outB = topB * omwy + botB * wy;
}

/** One output row of the scalar bilinear kernel (forRowBilinear). */
void
bilinearRowScalar(const BilinearTileArgs &a, std::int32_t y)
{
    const LayerRaster &src = a.src;
    const LayerMap &m = a.map;
    const double sy = (y + 0.5 - a.shiftY - m.originY) / m.scaleY;
    const double fy = sy - 0.5;
    const auto y0 = static_cast<std::int32_t>(std::floor(fy));
    const float wy = static_cast<float>(fy - y0);
    const std::int32_t w = src.width;
    const std::int32_t h = src.height;
    const float *row0 = src.pixels +
        static_cast<std::size_t>(clampi(y0, 0, h - 1)) * w * 3;
    const float *row1 = src.pixels +
        static_cast<std::size_t>(clampi(y0 + 1, 0, h - 1)) * w * 3;

    // fx is increasing in x (scale >= 1) and floor is monotone, so
    // the first and last pixel bound every footprint in the span.
    const double fx_first =
        (a.span.x0 + 0.5 - a.shiftX - m.originX) / m.scaleX - 0.5;
    const double fx_last =
        ((a.span.x1 - 1) + 0.5 - a.shiftX - m.originX) / m.scaleX -
        0.5;
    const auto ix_first =
        static_cast<std::int32_t>(std::floor(fx_first));
    const auto ix_last =
        static_cast<std::int32_t>(std::floor(fx_last));
    const bool interior = ix_first >= 0 && ix_last + 1 <= w - 1;

    float *row = a.outBase +
        static_cast<std::size_t>(y) * a.outStride * 3;
    for (std::int32_t x = a.span.x0; x < a.span.x1; x++) {
        const double fx =
            (x + 0.5 - a.shiftX - m.originX) / m.scaleX - 0.5;
        const auto xi = static_cast<std::int32_t>(std::floor(fx));
        const float wx = static_cast<float>(fx - xi);
        const std::int32_t xa = interior ? xi : clampi(xi, 0, w - 1);
        const std::int32_t xb =
            interior ? xi + 1 : clampi(xi + 1, 0, w - 1);
        const float *c00 = row0 + static_cast<std::size_t>(xa) * 3;
        const float *c10 = row0 + static_cast<std::size_t>(xb) * 3;
        const float *c01 = row1 + static_cast<std::size_t>(xa) * 3;
        const float *c11 = row1 + static_cast<std::size_t>(xb) * 3;
        const float omwx = 1.0f - wx;
        const float omwy = 1.0f - wy;
        float *dst = row + static_cast<std::size_t>(x) * 3;
        for (int ch = 0; ch < 3; ch++) {
            const float top = c00[ch] * omwx + c10[ch] * wx;
            const float bot = c01[ch] * omwx + c11[ch] * wx;
            const float smp = top * omwy + bot * wy;
            // composeOne reproduces the blend path's one-hot form:
            // c = 0 + sample * 1.0f (kept so the bits match).
            dst[ch] = a.composeOne ? 0.0f + smp * 1.0f : smp;
        }
    }
}

}  // namespace

void
bilinearTileScalar(const BilinearTileArgs &a)
{
    for (std::int32_t y = a.span.y0; y < a.span.y1; y++)
        bilinearRowScalar(a, y);
}

void
blendWeightsSpan(const BlendGeometry &g, const double *sx, double sy,
                 std::int32_t n, float *wF, float *wM, float *wO,
                 std::uint32_t *maskF, std::uint32_t *maskM,
                 std::uint32_t *maskO)
{
    PixelPartition p;
    p.centerX = g.centerX;
    p.centerY = g.centerY;
    p.foveaRadius = g.foveaRadius;
    p.middleRadius = g.middleRadius;
    p.blendBand = g.blendBand;
    for (std::int32_t i = 0; i < n; i++) {
        const double r =
            std::hypot(sx[i] - p.centerX, sy - p.centerY);
        const LayerWeights lw = layerWeights(p, r);
        wF[i] = static_cast<float>(lw.fovea);
        wM[i] = static_cast<float>(lw.middle);
        wO[i] = static_cast<float>(lw.outer);
        maskF[i] = lw.fovea > 0.0 ? 0xFFFFFFFFu : 0u;
        maskM[i] = lw.middle > 0.0 ? 0xFFFFFFFFu : 0u;
        maskO[i] = lw.outer > 0.0 ? 0xFFFFFFFFu : 0u;
    }
}

void
blendTileScalar(const BlendTileArgs &a)
{
    PixelPartition p;
    p.centerX = a.geom.centerX;
    p.centerY = a.geom.centerY;
    p.foveaRadius = a.geom.foveaRadius;
    p.middleRadius = a.geom.middleRadius;
    p.blendBand = a.geom.blendBand;

    for (std::int32_t y = a.span.y0; y < a.span.y1; y++) {
        const double sy = y + 0.5 - a.shiftY;
        float *row = a.outBase +
            static_cast<std::size_t>(y) * a.outStride * 3;
        for (std::int32_t x = a.span.x0; x < a.span.x1; x++) {
            const double sx = x + 0.5 - a.shiftX;
            const double r =
                std::hypot(sx - p.centerX, sy - p.centerY);
            const LayerWeights lw = layerWeights(p, r);
            float cr = 0.0f, cg = 0.0f, cb = 0.0f;
            if (lw.fovea > 0.0) {
                float sr, sg, sb;
                sampleRaster(
                    a.fovea,
                    (sx - a.foveaMap.originX) / a.foveaMap.scaleX,
                    (sy - a.foveaMap.originY) / a.foveaMap.scaleY,
                    sr, sg, sb);
                const float w = static_cast<float>(lw.fovea);
                cr = cr + sr * w;
                cg = cg + sg * w;
                cb = cb + sb * w;
            }
            if (lw.middle > 0.0) {
                float sr, sg, sb;
                sampleRaster(
                    a.middle,
                    (sx - a.middleMap.originX) / a.middleMap.scaleX,
                    (sy - a.middleMap.originY) / a.middleMap.scaleY,
                    sr, sg, sb);
                const float w = static_cast<float>(lw.middle);
                cr = cr + sr * w;
                cg = cg + sg * w;
                cb = cb + sb * w;
            }
            if (lw.outer > 0.0) {
                float sr, sg, sb;
                sampleRaster(
                    a.outer,
                    (sx - a.outerMap.originX) / a.outerMap.scaleX,
                    (sy - a.outerMap.originY) / a.outerMap.scaleY,
                    sr, sg, sb);
                const float w = static_cast<float>(lw.outer);
                cr = cr + sr * w;
                cg = cg + sg * w;
                cb = cb + sb * w;
            }
            float *dst = row + static_cast<std::size_t>(x) * 3;
            dst[0] = cr;
            dst[1] = cg;
            dst[2] = cb;
        }
    }
}

void
bilinearTile(Backend b, const BilinearTileArgs &a)
{
    switch (b) {
    case Backend::Avx2:
#ifdef QVR_SIMD_COMPILED_AVX2
        bilinearTileAvx2(a);
        return;
#else
        break;
#endif
    case Backend::Neon:
#ifdef QVR_SIMD_COMPILED_NEON
        bilinearTileNeon(a);
        return;
#else
        break;
#endif
    case Backend::Scalar:
        break;
    }
    bilinearTileScalar(a);
}

void
blendTile(Backend b, const BlendTileArgs &a)
{
    switch (b) {
    case Backend::Avx2:
#ifdef QVR_SIMD_COMPILED_AVX2
        blendTileAvx2(a);
        return;
#else
        break;
#endif
    case Backend::Neon:
#ifdef QVR_SIMD_COMPILED_NEON
        blendTileNeon(a);
        return;
#else
        break;
#endif
    case Backend::Scalar:
        break;
    }
    blendTileScalar(a);
}

}  // namespace qvr::core::simd
