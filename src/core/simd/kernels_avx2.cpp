/**
 * @file
 * AVX2 backend: 8-wide bilinear and trilinear blend-band tile
 * kernels, bit-exact against the scalar oracle.
 *
 * Bit-exactness discipline (see DESIGN.md section 12):
 *  - coordinate math in doubles, one IEEE op per scalar op, in the
 *    reference order (two separate subtractions for shift/origin,
 *    div, floor, truncating convert, narrowing convert);
 *  - channel lerps in float via explicit mul/add — this TU is built
 *    with -mno-fma -ffp-contract=off so nothing contracts;
 *  - layer weights come from the shared scalar blendWeightsSpan()
 *    (std::hypot / smoothstep are not vectorised anywhere);
 *  - weight-zero terms are masked out on the DOUBLE weight's > 0.0
 *    comparison, exactly like the reference's guards;
 *  - vector tails delegate to the scalar kernel.
 *
 * The horizontal tap pipeline is row-invariant, so it is computed
 * once per tile (makeLaneTaps) and reused by every row; the per-row
 * loop is only gathers + lerps (+ scalar weights for blend tiles).
 *
 * ODR discipline: this TU is compiled with -mavx2, so every function
 * it EMITS carries VEX encodings.  All helpers live in an anonymous
 * namespace (internal linkage) and nothing from this file may be
 * inlined elsewhere; the only external symbols are the two kernel
 * entry points, which callers reach through the dispatch shim after
 * a runtime CPU check.
 */

#include "core/simd/kernels.hpp"

#ifdef QVR_SIMD_COMPILED_AVX2

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace qvr::core::simd
{

namespace
{

/** Widest x-chunk the stack-resident tap cache covers (pixels). */
constexpr std::int32_t kChunk = 256;
constexpr std::int32_t kBlocks = kChunk / 8;

inline std::int32_t
clampi(std::int32_t v, std::int32_t lo, std::int32_t hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Row-invariant vertical context of one layer. */
struct RowCtx
{
    const float *row0 = nullptr;
    const float *row1 = nullptr;
    float wy = 0.0f;
};

RowCtx
makeRowCtx(const LayerRaster &L, double ly)
{
    const double fy = ly - 0.5;
    const auto y0 = static_cast<std::int32_t>(std::floor(fy));
    RowCtx c;
    c.wy = static_cast<float>(fy - y0);
    c.row0 = L.pixels +
        static_cast<std::size_t>(clampi(y0, 0, L.height - 1)) *
            L.width * 3;
    c.row1 = L.pixels +
        static_cast<std::size_t>(clampi(y0 + 1, 0, L.height - 1)) *
            L.width * 3;
    return c;
}

/** Horizontal taps for 8 lanes: clamped 2x3 gather indices + wx. */
struct LaneTaps
{
    __m256i ia;  ///< 3 * clamped xi (float index of the R channel)
    __m256i ib;  ///< 3 * clamped (xi + 1)
    __m256 wx;
    __m256 omwx;
};

/**
 * fx = (((x + 0.5 - shiftX) - originX) / scaleX) - 0.5 per lane,
 * then floor/convert exactly as the scalar kernel does.  Row-
 * invariant: computed once per tile chunk.
 */
LaneTaps
makeLaneTaps(std::int32_t x, double shiftX, const LayerMap &m,
             std::int32_t w)
{
    alignas(32) double sx[8];
    for (int i = 0; i < 8; i++)
        sx[i] = (x + i) + 0.5 - shiftX;
    const __m256d vox = _mm256_set1_pd(m.originX);
    const __m256d vsc = _mm256_set1_pd(m.scaleX);
    const __m256d vhalf = _mm256_set1_pd(0.5);
    __m128i xiHalf[2];
    __m128 wxHalf[2];
    for (int half = 0; half < 2; half++) {
        const __m256d vsx = _mm256_load_pd(sx + 4 * half);
        const __m256d lx =
            _mm256_div_pd(_mm256_sub_pd(vsx, vox), vsc);
        const __m256d fx = _mm256_sub_pd(lx, vhalf);
        const __m256d fl = _mm256_floor_pd(fx);
        xiHalf[half] = _mm256_cvttpd_epi32(fl);
        wxHalf[half] = _mm256_cvtpd_ps(_mm256_sub_pd(fx, fl));
    }
    const __m256i xi = _mm256_set_m128i(xiHalf[1], xiHalf[0]);
    LaneTaps t;
    t.wx = _mm256_set_m128(wxHalf[1], wxHalf[0]);
    t.omwx = _mm256_sub_ps(_mm256_set1_ps(1.0f), t.wx);
    const __m256i vzero = _mm256_setzero_si256();
    const __m256i vwm1 = _mm256_set1_epi32(w - 1);
    const __m256i vone = _mm256_set1_epi32(1);
    const __m256i vthree = _mm256_set1_epi32(3);
    const __m256i xa =
        _mm256_max_epi32(_mm256_min_epi32(xi, vwm1), vzero);
    const __m256i xb = _mm256_max_epi32(
        _mm256_min_epi32(_mm256_add_epi32(xi, vone), vwm1), vzero);
    t.ia = _mm256_mullo_epi32(xa, vthree);
    t.ib = _mm256_mullo_epi32(xb, vthree);
    return t;
}

/** One channel's bilinear lerp for 8 lanes (ch = 0/1/2 = R/G/B). */
inline __m256
lerpChannel(const RowCtx &ctx, const LaneTaps &t, int ch,
            __m256 vwy, __m256 vomwy)
{
    const __m256i off = _mm256_set1_epi32(ch);
    const __m256i ia = _mm256_add_epi32(t.ia, off);
    const __m256i ib = _mm256_add_epi32(t.ib, off);
    const __m256 c00 = _mm256_i32gather_ps(ctx.row0, ia, 4);
    const __m256 c10 = _mm256_i32gather_ps(ctx.row0, ib, 4);
    const __m256 c01 = _mm256_i32gather_ps(ctx.row1, ia, 4);
    const __m256 c11 = _mm256_i32gather_ps(ctx.row1, ib, 4);
    const __m256 top = _mm256_add_ps(_mm256_mul_ps(c00, t.omwx),
                                     _mm256_mul_ps(c10, t.wx));
    const __m256 bot = _mm256_add_ps(_mm256_mul_ps(c01, t.omwx),
                                     _mm256_mul_ps(c11, t.wx));
    return _mm256_add_ps(_mm256_mul_ps(top, vomwy),
                         _mm256_mul_ps(bot, vwy));
}

/** Transpose three lane vectors into interleaved RGB at dst. */
inline void
storeInterleaved(float *dst, __m256 vr, __m256 vg, __m256 vb)
{
    alignas(32) float sr[8], sg[8], sb[8];
    _mm256_store_ps(sr, vr);
    _mm256_store_ps(sg, vg);
    _mm256_store_ps(sb, vb);
    for (int i = 0; i < 8; i++) {
        dst[3 * i + 0] = sr[i];
        dst[3 * i + 1] = sg[i];
        dst[3 * i + 2] = sb[i];
    }
}

/** Weighted, masked accumulation of one layer into the lane accs. */
inline void
accumulateLayer(const RowCtx &ctx, const LaneTaps &t,
                const float *wArr, const std::uint32_t *mArr,
                __m256 &accR, __m256 &accG, __m256 &accB)
{
    const __m256i mask = _mm256_load_si256(
        reinterpret_cast<const __m256i *>(mArr));
    if (_mm256_testz_si256(mask, mask))
        return;  // whole block skips this layer, like the reference
    const __m256 vwy = _mm256_set1_ps(ctx.wy);
    const __m256 vomwy = _mm256_set1_ps(1.0f - ctx.wy);
    const __m256 wv = _mm256_load_ps(wArr);
    const __m256 maskPs = _mm256_castsi256_ps(mask);
    const __m256 sr = lerpChannel(ctx, t, 0, vwy, vomwy);
    const __m256 sg = lerpChannel(ctx, t, 1, vwy, vomwy);
    const __m256 sb = lerpChannel(ctx, t, 2, vwy, vomwy);
    accR = _mm256_add_ps(accR,
                         _mm256_and_ps(_mm256_mul_ps(sr, wv), maskPs));
    accG = _mm256_add_ps(accG,
                         _mm256_and_ps(_mm256_mul_ps(sg, wv), maskPs));
    accB = _mm256_add_ps(accB,
                         _mm256_and_ps(_mm256_mul_ps(sb, wv), maskPs));
}

}  // namespace

void
bilinearTileAvx2(const BilinearTileArgs &a)
{
    LaneTaps taps[kBlocks];
    for (std::int32_t cx0 = a.span.x0; cx0 < a.span.x1;
         cx0 += kChunk) {
        const std::int32_t cx1 =
            cx0 + kChunk < a.span.x1 ? cx0 + kChunk : a.span.x1;
        const std::int32_t nblocks = (cx1 - cx0) / 8;
        const std::int32_t vecEnd = cx0 + nblocks * 8;
        for (std::int32_t b = 0; b < nblocks; b++)
            taps[b] = makeLaneTaps(cx0 + b * 8, a.shiftX, a.map,
                                   a.src.width);

        for (std::int32_t y = a.span.y0; y < a.span.y1; y++) {
            const double ly =
                (y + 0.5 - a.shiftY - a.map.originY) / a.map.scaleY;
            const RowCtx ctx = makeRowCtx(a.src, ly);
            const __m256 vwy = _mm256_set1_ps(ctx.wy);
            const __m256 vomwy = _mm256_set1_ps(1.0f - ctx.wy);
            const __m256 vone = _mm256_set1_ps(1.0f);
            const __m256 vzero = _mm256_setzero_ps();
            float *row = a.outBase +
                static_cast<std::size_t>(y) * a.outStride * 3;
            for (std::int32_t b = 0; b < nblocks; b++) {
                __m256 vr = lerpChannel(ctx, taps[b], 0, vwy, vomwy);
                __m256 vg = lerpChannel(ctx, taps[b], 1, vwy, vomwy);
                __m256 vb = lerpChannel(ctx, taps[b], 2, vwy, vomwy);
                if (a.composeOne) {
                    // 0 + sample * 1.0f, matching the blend path's
                    // one-hot arithmetic bit for bit.
                    vr = _mm256_add_ps(vzero, _mm256_mul_ps(vr, vone));
                    vg = _mm256_add_ps(vzero, _mm256_mul_ps(vg, vone));
                    vb = _mm256_add_ps(vzero, _mm256_mul_ps(vb, vone));
                }
                storeInterleaved(
                    row + static_cast<std::size_t>(cx0 + b * 8) * 3,
                    vr, vg, vb);
            }
            if (vecEnd < cx1) {
                BilinearTileArgs tail = a;
                tail.span = TileSpan{vecEnd, y, cx1, y + 1};
                bilinearTileScalar(tail);
            }
        }
    }
}

void
blendTileAvx2(const BlendTileArgs &a)
{
    LaneTaps tapsF[kBlocks], tapsM[kBlocks], tapsO[kBlocks];
    alignas(32) double sx[kChunk];
    alignas(32) float wF[kChunk], wM[kChunk], wO[kChunk];
    alignas(32) std::uint32_t mF[kChunk], mM[kChunk], mO[kChunk];

    for (std::int32_t cx0 = a.span.x0; cx0 < a.span.x1;
         cx0 += kChunk) {
        const std::int32_t cx1 =
            cx0 + kChunk < a.span.x1 ? cx0 + kChunk : a.span.x1;
        const std::int32_t nblocks = (cx1 - cx0) / 8;
        const std::int32_t vecEnd = cx0 + nblocks * 8;
        const std::int32_t nvec = nblocks * 8;
        for (std::int32_t i = 0; i < nvec; i++)
            sx[i] = (cx0 + i) + 0.5 - a.shiftX;
        for (std::int32_t b = 0; b < nblocks; b++) {
            tapsF[b] = makeLaneTaps(cx0 + b * 8, a.shiftX,
                                    a.foveaMap, a.fovea.width);
            tapsM[b] = makeLaneTaps(cx0 + b * 8, a.shiftX,
                                    a.middleMap, a.middle.width);
            tapsO[b] = makeLaneTaps(cx0 + b * 8, a.shiftX,
                                    a.outerMap, a.outer.width);
        }

        for (std::int32_t y = a.span.y0; y < a.span.y1; y++) {
            const double sy = y + 0.5 - a.shiftY;
            const RowCtx ctxF = makeRowCtx(
                a.fovea,
                (sy - a.foveaMap.originY) / a.foveaMap.scaleY);
            const RowCtx ctxM = makeRowCtx(
                a.middle,
                (sy - a.middleMap.originY) / a.middleMap.scaleY);
            const RowCtx ctxO = makeRowCtx(
                a.outer,
                (sy - a.outerMap.originY) / a.outerMap.scaleY);
            blendWeightsSpan(a.geom, sx, sy, nvec, wF, wM, wO,
                             mF, mM, mO);
            float *row = a.outBase +
                static_cast<std::size_t>(y) * a.outStride * 3;
            for (std::int32_t b = 0; b < nblocks; b++) {
                __m256 accR = _mm256_setzero_ps();
                __m256 accG = _mm256_setzero_ps();
                __m256 accB = _mm256_setzero_ps();
                accumulateLayer(ctxF, tapsF[b], wF + b * 8, mF + b * 8,
                                accR, accG, accB);
                accumulateLayer(ctxM, tapsM[b], wM + b * 8, mM + b * 8,
                                accR, accG, accB);
                accumulateLayer(ctxO, tapsO[b], wO + b * 8, mO + b * 8,
                                accR, accG, accB);
                storeInterleaved(
                    row + static_cast<std::size_t>(cx0 + b * 8) * 3,
                    accR, accG, accB);
            }
            if (vecEnd < cx1) {
                BlendTileArgs tail = a;
                tail.span = TileSpan{vecEnd, y, cx1, y + 1};
                blendTileScalar(tail);
            }
        }
    }
}

}  // namespace qvr::core::simd

#endif  // QVR_SIMD_COMPILED_AVX2
