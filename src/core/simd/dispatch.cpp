#include "core/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "common/log.hpp"

#ifndef QVR_SIMD_DEFAULT
#define QVR_SIMD_DEFAULT "auto"
#endif

namespace qvr::core::simd
{

namespace
{

std::atomic<int> g_override{-1};

Backend
bestSupported()
{
    if (backendSupported(Backend::Avx2))
        return Backend::Avx2;
    if (backendSupported(Backend::Neon))
        return Backend::Neon;
    return Backend::Scalar;
}

Backend
resolveDefault()
{
    const char *env = std::getenv("QVR_SIMD");
    const std::string name = (env && *env) ? env : QVR_SIMD_DEFAULT;
    return parseBackend(name);
}

}  // namespace

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    case Backend::Neon:
        return "neon";
    }
    return "scalar";
}

bool
backendCompiled(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
#ifdef QVR_SIMD_COMPILED_AVX2
        return true;
#else
        return false;
#endif
    case Backend::Neon:
#ifdef QVR_SIMD_COMPILED_NEON
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
backendSupported(Backend b)
{
    if (!backendCompiled(b))
        return false;
    switch (b) {
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Backend::Neon:
        // NEON is baseline on AArch64; compiled-in implies usable.
        return true;
    }
    return false;
}

Backend
parseBackend(const std::string &name)
{
    if (name == "auto")
        return bestSupported();
    Backend b = Backend::Scalar;
    if (name == "scalar") {
        b = Backend::Scalar;
    } else if (name == "avx2") {
        b = Backend::Avx2;
    } else if (name == "neon") {
        b = Backend::Neon;
    } else {
        QVR_FATAL("unknown QVR_SIMD backend '", name,
                  "' (want auto|scalar|avx2|neon)");
    }
    QVR_REQUIRE(backendSupported(b),
                "QVR_SIMD backend explicitly requested but not "
                "available on this host");
    return b;
}

Backend
dispatch()
{
    const int o = g_override.load(std::memory_order_relaxed);
    if (o >= 0)
        return static_cast<Backend>(o);
    // Env/default resolution is stable for the process lifetime.
    static const Backend def = resolveDefault();
    return def;
}

void
setBackend(Backend b)
{
    QVR_REQUIRE(backendSupported(b),
                "cannot force an unsupported SIMD backend");
    g_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

void
clearBackendOverride()
{
    g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace qvr::core::simd
