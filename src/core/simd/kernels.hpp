/**
 * @file
 * Vectorised pixel kernels behind the dispatch shim.
 *
 * The kernels operate on RAW views (interleaved-RGB float rasters +
 * plain-double transforms) rather than core::Image, for two reasons:
 *
 *  - the AVX2/NEON translation units must not instantiate any
 *    header-inline code from the wider tree (an inline function
 *    emitted from a `-mavx2` TU is a weak symbol with VEX encodings
 *    that the linker may pick for EVERY caller — an illegal
 *    instruction on older hosts), so this header includes nothing
 *    but <cstdint> and the dispatch enum;
 *  - the raw views make the per-lane arithmetic explicit, which is
 *    what the bit-exactness contract is written against.
 *
 * The kernels are TILE-granular: the horizontal coordinate pipeline
 * (centre offset, shift, origin, scale, floor, clamp — all doubles)
 * is row-invariant, so a tile kernel computes the lane taps once and
 * reuses them for every row, leaving only the gathers and float
 * lerps in the per-row loop.
 *
 * Every backend implements the SAME arithmetic, operation for
 * operation, as the scalar reference loops in core/uca.cpp (see
 * DESIGN.md section 12): float lerps in the reference order, double
 * coordinate math, weights computed by the shared scalar
 * blendWeightsSpan() (libm calls are not bit-reproducible when
 * vectorised), and weight-zero terms excluded exactly as the
 * reference's `> 0.0` guards do.  Vector tails (spans not a multiple
 * of the lane width) are delegated to the scalar kernel.
 */

#ifndef QVR_CORE_SIMD_KERNELS_HPP
#define QVR_CORE_SIMD_KERNELS_HPP

#include <cstdint>

#include "core/simd/dispatch.hpp"

namespace qvr::core::simd
{

/** Borrowed view of one layer: interleaved RGB rows, row-major. */
struct LayerRaster
{
    const float *pixels = nullptr;  ///< width*3 floats per row
    std::int32_t width = 0;
    std::int32_t height = 0;
};

/** Native -> texel affine map (foveation::LayerTransform's fields,
 *  duplicated here to keep this header dependency-free). */
struct LayerMap
{
    double originX = 0.0;
    double originY = 0.0;
    double scaleX = 1.0;
    double scaleY = 1.0;
};

/** Output pixel rectangle [x0, x1) x [y0, y1). */
struct TileSpan
{
    std::int32_t x0 = 0;
    std::int32_t y0 = 0;
    std::int32_t x1 = 0;
    std::int32_t y1 = 0;
};

/**
 * Single-layer bilinear sampling of one tile: the generalized,
 * tile-hoisted forRowBilinear.  Sample x of output pixel (x, y) is
 * ((x + 0.5 - shiftX) - originX) / scaleX (subtracting an exact 0.0
 * origin preserves the legacy `/ s` bits).
 */
struct BilinearTileArgs
{
    LayerRaster src;
    LayerMap map;
    double shiftX = 0.0;
    double shiftY = 0.0;
    TileSpan span;
    /** Output frame base; pixel (x, y) lands at
     *  outBase + (y * outStride + x) * 3. */
    float *outBase = nullptr;
    std::int32_t outStride = 0;  ///< in pixels
    /** true: write 0 + sample*1.0f (the compose-one-layer form the
     *  blend path produces); false: write the sample directly (ATW
     *  resample form). */
    bool composeOne = false;
};

/** Radial partition geometry for the blend-band kernel. */
struct BlendGeometry
{
    double centerX = 0.0;
    double centerY = 0.0;
    double foveaRadius = 0.0;
    double middleRadius = 0.0;
    double blendBand = 16.0;
};

/**
 * Trilinear blend-band tile: per pixel, radius -> layer weights ->
 * weighted sum of bilinear samples from the (up to) three layers.
 */
struct BlendTileArgs
{
    LayerRaster fovea, middle, outer;
    LayerMap foveaMap, middleMap, outerMap;
    BlendGeometry geom;
    double shiftX = 0.0;
    double shiftY = 0.0;
    TileSpan span;
    float *outBase = nullptr;
    std::int32_t outStride = 0;
};

/** Dispatch to @p b (falls back to scalar if not compiled in). */
void bilinearTile(Backend b, const BilinearTileArgs &a);
void blendTile(Backend b, const BlendTileArgs &a);

/** The bit-exact oracle (and tail handler for the vector paths). */
void bilinearTileScalar(const BilinearTileArgs &a);
void blendTileScalar(const BlendTileArgs &a);

void bilinearTileAvx2(const BilinearTileArgs &a);
void blendTileAvx2(const BlendTileArgs &a);
void bilinearTileNeon(const BilinearTileArgs &a);
void blendTileNeon(const BlendTileArgs &a);

/**
 * Scalar per-lane layer weights for @p n sample positions, shared by
 * every backend: std::hypot + core::layerWeights evaluated exactly
 * as the scalar reference does, never vectorised.  w* receive the
 * float-cast weights; mask* receive all-ones (0xFFFFFFFF) where the
 * DOUBLE weight is > 0.0 (the reference's guard), else 0.
 */
void blendWeightsSpan(const BlendGeometry &g, const double *sx,
                      double sy, std::int32_t n, float *wF, float *wM,
                      float *wO, std::uint32_t *maskF,
                      std::uint32_t *maskM, std::uint32_t *maskO);

}  // namespace qvr::core::simd

#endif  // QVR_CORE_SIMD_KERNELS_HPP
