/**
 * @file
 * Lightweight Interaction-Aware Workload Controller (LIWC),
 * Section 4.1.
 *
 * LIWC picks each frame's fovea eccentricity e1 so local and remote
 * rendering latencies balance.  It is a tiny Q-learning-style engine:
 *
 *  - a *motion codec* quantises the frame-to-frame user-motion delta
 *    into a 10-bit index (6 bits of 6-DoF HMD change + 4 bits of
 *    fovea-centre movement);
 *  - an SRAM *mapping table* (2^15 fp16 entries = 64 KB) stores, per
 *    (motion index, eccentricity delta-tag in -5..+5 deg), the learned
 *    *latency-gradient offset*: the expected change of the local-minus-
 *    remote latency gap when that delta is applied under that motion;
 *  - a *latency predictor* (Eq. 2) estimates the current gap directly
 *    from hardware-level intermediate data: the triangle count seen at
 *    render setup and the ACK-derived network throughput —
 *        T_local  = #triangles x %fovea / P(GPU_m)
 *        T_remote = DataSize(M+O) / Throughput
 *  - a *runtime updater* folds each frame's measured latencies back
 *    into the table with the reward rule
 *        gradient = (1 - alpha) x gradient' + alpha x delta_latency
 *    and refreshes the predictor's GPU-performance and throughput
 *    terms.
 *
 * Selection is one table probe: LIWC picks the delta-tag whose stored
 * gradient is closest to the gap it wants to cancel.
 */

#ifndef QVR_CORE_LIWC_HPP
#define QVR_CORE_LIWC_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/fp16.hpp"
#include "common/types.hpp"
#include "foveation/layers.hpp"
#include "motion/pose.hpp"

namespace qvr::core
{

/** LIWC tunables; defaults follow Section 4.1/4.3. */
struct LiwcConfig
{
    /** Reward parameter alpha of the update rule. */
    double alpha = 0.30;
    /** Delta tags span [-deltaRange, +deltaRange] degrees. */
    int deltaRange = 5;
    /** Prior: expected gap change per degree of e1 (seconds);
     *  seeds the table before any learning. */
    double priorGradientPerDegree = 0.8e-3;

    /** Motion-codec quantisation thresholds. */
    double rotActiveDeg = 0.15;    ///< per-frame rotation "active"
    double posActiveM = 0.002;     ///< per-frame translation "active"
    double gazeSmallDeg = 0.3;     ///< small fovea move
    double gazeLargeDeg = 1.5;     ///< large fovea move

    /** log2 of the SRAM table depth (paper: 15 -> 64 KB of fp16). */
    std::uint32_t tableDepthLog2 = 15;

    /** Controller clock (for the overhead accounting only). */
    Hertz frequency = fromMHz(500.0);
};

/**
 * Quantises motion deltas into the table's 10-bit motion index:
 * bits [9:4] flag per-DoF activity (yaw, pitch, roll, x, y, z),
 * bits [3:0] encode fovea-centre movement (2-bit magnitude class,
 * 2-bit direction quadrant).
 */
class MotionCodec
{
  public:
    explicit MotionCodec(const LiwcConfig &cfg);

    static constexpr std::uint32_t kMotionBits = 10;
    static constexpr std::uint32_t kMotionEntries = 1u << kMotionBits;

    std::uint32_t encode(const motion::MotionDelta &delta) const;

  private:
    LiwcConfig cfg_;
};

/** Eq. 2 latency predictor fed by hardware-level counters. */
class LatencyPredictor
{
  public:
    /**
     * @param gpu_triangle_throughput initial P(GPU_m), triangles/s
     * @param ack_throughput initial network throughput, bits/s
     * @param bits_per_pixel initial compressed-periphery bpp estimate
     */
    LatencyPredictor(double gpu_triangle_throughput,
                     BitsPerSecond ack_throughput,
                     double bits_per_pixel);

    /** T_local = triangles x fovea_fraction / P(GPU_m). */
    Seconds predictLocal(std::uint64_t setup_triangles,
                         double fovea_workload_fraction) const;

    /** T_remote = periphery_pixels x bpp / throughput + overhead,
     *  where the fixed-overhead term (uplink, server render/encode,
     *  propagation, decode) is learned online from ACK timing. */
    Seconds predictRemote(double periphery_pixels) const;

    /** Runtime-updater hooks (EWMA refresh). */
    void observeGpuRate(double triangles_per_second);
    void observeThroughput(BitsPerSecond bits_per_second);
    void observeCompression(double bits_per_pixel);
    /** Feed one measured remote-branch latency; the non-payload part
     *  is folded into the learned overhead term. */
    void observeRemoteBranch(Seconds measured, double periphery_pixels);

    double gpuRate() const { return gpuRate_; }
    BitsPerSecond throughput() const { return throughput_; }
    double bitsPerPixel() const { return bitsPerPixel_; }
    Seconds remoteOverhead() const { return remoteOverhead_; }

  private:
    double gpuRate_;
    BitsPerSecond throughput_;
    double bitsPerPixel_;
    Seconds remoteOverhead_ = 0.0;
};

/** LIWC's per-frame output. */
struct LiwcDecision
{
    double e1 = 5.0;              ///< chosen fovea radius (deg)
    int deltaTag = 0;             ///< applied delta (deg)
    std::uint32_t motionIndex = 0;
    Seconds predictedLocal = 0.0;
    Seconds predictedRemote = 0.0;
};

/** Measured outcome of a frame, fed back by the runtime updater. */
struct LiwcFeedback
{
    Seconds measuredLocal = 0.0;
    Seconds measuredRemote = 0.0;
    std::uint64_t renderedTriangles = 0;   ///< local (fovea) triangles
    double peripheryPixels = 0.0;
    Bytes peripheryBytes = 0;
    BitsPerSecond ackThroughput = 0.0;
};

/** The controller. */
class Liwc
{
  public:
    Liwc(const LiwcConfig &cfg,
         const foveation::LayerGeometry &geometry,
         double initial_gpu_rate, BitsPerSecond initial_throughput,
         double initial_bpp, double initial_e1 = 5.0,
         double center_concentration = 1.25);

    /**
     * Select the eccentricity for the upcoming frame.
     * @param delta      motion delta vs. the previous frame
     * @param setup_triangles triangle count observed at render setup
     * @param gaze       fovea centre (degrees from screen centre)
     */
    LiwcDecision selectEccentricity(const motion::MotionDelta &delta,
                                    std::uint64_t setup_triangles,
                                    Vec2 gaze);

    /** Runtime updater: fold the frame's measurements back in. */
    void update(const LiwcDecision &decision,
                const LiwcFeedback &feedback);

    /** Externally pin the eccentricity state (degradation clamp):
     *  the next selection steps from this value instead of the
     *  controller's own — without it the internal setpoint keeps
     *  integrating against a frozen predictor during a fault and
     *  recovery starts from a ballooned e1. */
    void overrideE1(double e1);

    double currentE1() const { return e1_; }
    const LatencyPredictor &predictor() const { return predictor_; }

    /** Raw table read (tests/diagnostics). */
    double gradientAt(std::uint32_t motion_index, int delta_tag) const;

    /**
     * Persist / restore the learned SRAM table (raw fp16 words).
     * A warm-started controller skips the cold-start imbalance of
     * Fig. 14's first frames; the format is the table's exact bit
     * image prefixed by its depth, so mismatched geometry is
     * rejected (fatal) rather than silently misread.
     */
    void saveTable(std::ostream &os) const;
    void loadTable(std::istream &is);

    /** Section 4.3 accounting. */
    Bytes tableBytes() const;
    double areaMm2() const { return 0.66; }
    double maxPowerW() const { return 0.025; }
    /** Selection latency: one SRAM probe per tag (hidden in the
     *  pipeline; reported for the overhead bench). */
    Seconds selectionLatency() const;

  private:
    std::size_t slot(std::uint32_t motion_index, int delta_tag) const;

    LiwcConfig cfg_;
    const foveation::LayerGeometry *geometry_;
    foveation::PartitionOracle oracle_;
    MotionCodec codec_;
    LatencyPredictor predictor_;
    std::vector<Half> table_;
    double e1_;
    double centerConcentration_;
    bool havePrevDiff_ = false;
    Seconds prevMeasuredDiff_ = 0.0;
};

}  // namespace qvr::core

#endif  // QVR_CORE_LIWC_HPP
