/**
 * @file
 * Tiled, thread-parallel pixel-pipeline engine.
 *
 * The scalar UCA loops in uca.cpp evaluate the radius, the smoothstep
 * blend weights and up to three layer samples for EVERY output pixel,
 * even deep inside the fovea where the weights are exactly (1, 0, 0).
 * The paper's UCA hardware avoids precisely that: it walks the frame
 * as 32x32 tiles, so layer membership becomes a per-tile decision and
 * interior tiles run a cheap bilinear-only path (Section 4.2, 532
 * cycles for a border tile vs 300 for an interior one).
 *
 * This engine is the software analogue.  The output frame is split
 * into kPixelTileSize tiles; each tile is classified against the
 * radial partition using conservative min/max bounds on the sample
 * radius over the tile, and
 *
 *  - pure-fovea / pure-middle / pure-outer tiles dispatch to a
 *    single-layer fast path that skips the radius, the weights and
 *    the two zero-weight layer samples entirely;
 *  - only tiles that (may) intersect a blend band run the full
 *    trilinear path.
 *
 * Tiles fan across a qvr::sim::ThreadPool (sim::forEachParallel):
 * every tile writes a disjoint region of the output and reads only
 * immutable inputs, so the result is independent of the worker count
 * and of the tile-to-thread assignment.
 *
 * Bit-exactness contract (inherited from the PR-1 determinism rule):
 * for any input and any thread count the output is **bit-identical**
 * to the scalar reference loops (ucaUnified / sequentialCompositeAtw).
 * Fast paths only ever skip terms whose weight is exactly 0.0 and
 * multiplications by exactly 1.0f — they never re-associate or
 * re-order arithmetic.  The classifier is conservative: a tile is
 * declared single-layer only when every pixel in it provably has
 * weight exactly one for that layer (a small epsilon pushes
 * borderline tiles onto the full path, which is always correct).
 * tests/core/test_tiled_uca.cpp asserts maxAbsDiff == 0 against the
 * references at 1/2/8 threads.
 */

#ifndef QVR_CORE_PIXEL_ENGINE_HPP
#define QVR_CORE_PIXEL_ENGINE_HPP

#include <cstdint>
#include <memory>

#include "core/simd/dispatch.hpp"
#include "core/uca.hpp"
#include "sim/thread_pool.hpp"

namespace qvr::core
{

/** Tile granularity of the pixel engine (the paper's UCA tile). */
constexpr std::int32_t kPixelTileSize = 32;

/** Which layers the pixels of one tile can touch. */
enum class TileCoverage
{
    Fovea,   ///< weights exactly (1, 0, 0) everywhere in the tile
    Middle,  ///< weights exactly (0, 1, 0)
    Outer,   ///< weights exactly (0, 0, 1)
    Blend,   ///< may cross a blend band: full trilinear path
};

/**
 * Conservative coverage of the closed sample-coordinate rectangle
 * [sx0, sx1] x [sy0, sy1] (the positions at which the pixels of one
 * tile sample the partition, i.e. already reprojected).  Returns a
 * single-layer class only when layerWeights() is provably exactly
 * one-hot for that layer at EVERY point of the rectangle; anything
 * uncertain — including degenerate partitions — is Blend.
 */
TileCoverage classifyCoverage(const PixelPartition &p, double sx0,
                              double sy0, double sx1, double sy1);

/** Tile census of the last engine pass (classification outcome). */
struct PixelEngineStats
{
    std::uint32_t tiles = 0;
    std::uint32_t foveaTiles = 0;
    std::uint32_t middleTiles = 0;
    std::uint32_t outerTiles = 0;
    std::uint32_t blendTiles = 0;

    std::uint32_t
    fastPathTiles() const
    {
        return foveaTiles + middleTiles + outerTiles;
    }
};

/**
 * The engine.  Owns its worker pool; one instance serves many frames
 * (pool spin-up is paid once).  Not safe for concurrent use by
 * multiple threads — one engine per caller, like a GPU queue.
 */
class PixelEngine
{
  public:
    /**
     * @param threads  worker count; 1 runs tiles inline on the
     *                 calling thread (true serial mode, no pool), 0
     *                 means sim::ThreadPool::defaultParallelism().
     *
     * The row kernels run on the SIMD backend simd::dispatch()
     * selects at construction (QVR_SIMD env / CMake default); every
     * backend is bit-exact, so the choice never changes output.
     */
    explicit PixelEngine(std::size_t threads = 0);

    /** Same, with an explicit (supported) SIMD backend. */
    PixelEngine(std::size_t threads, simd::Backend backend);

    ~PixelEngine();

    PixelEngine(const PixelEngine &) = delete;
    PixelEngine &operator=(const PixelEngine &) = delete;

    /** Effective worker count (1 when running inline). */
    std::size_t threadCount() const { return threads_; }

    /** The SIMD backend this engine's kernels run on. */
    simd::Backend backend() const { return backend_; }

    /** Tiled ucaUnified (Eq. 4): bit-identical, tile-parallel. */
    Image ucaUnified(const UcaFrameInputs &in);

    /**
     * Tiled unified pass over encoder-aligned compressed layers
     * (bit-identical to the scalar ucaUnifiedCompressed reference):
     * periphery tiles sample the cropped, 32-pixel-aligned buffers
     * directly through their LayerTransforms — no expand-first pass.
     */
    Image ucaUnifiedCompressed(const CompressedUcaInputs &in);

    /** Tiled sequentialCompositeAtw (Eq. 3): both passes tiled. */
    Image sequentialCompositeAtw(const UcaFrameInputs &in);

    /** Tile-parallel bilinear resample of @p src at (x,y) - shift —
     *  pass 2 of the sequential path, also the reference-reprojection
     *  loop of renderFoveated(). */
    Image resampleShift(const Image &src, Vec2 shift);

    /** Tile census of the most recent composition pass. */
    const PixelEngineStats &lastStats() const { return stats_; }

  private:
    template <typename Fn>
    void forEachTile(std::int32_t width, std::int32_t height, Fn &&fn);

    Image composite(const UcaFrameInputs &in, Vec2 shift);
    Image compositeLayers(const Image &fovea, const Image &middle,
                          const Image &outer,
                          const foveation::LayerTransform &middleMap,
                          const foveation::LayerTransform &outerMap,
                          const PixelPartition &p, Vec2 shift,
                          std::int32_t w, std::int32_t h);

    std::size_t threads_;
    simd::Backend backend_;
    std::unique_ptr<sim::ThreadPool> pool_;  ///< null = inline
    PixelEngineStats stats_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_PIXEL_ENGINE_HPP
