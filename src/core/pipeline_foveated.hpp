/**
 * @file
 * The collaborative foveated rendering pipeline — Q-VR itself plus
 * the ablated design points of Section 6:
 *
 *  - FFR    — fixed foveated rendering: classic 5-degree fovea,
 *    composition and ATW on the GPU;
 *  - DFR    — LIWC-driven dynamic eccentricity, composition and ATW
 *    still on the GPU;
 *  - SW-QVR — pure-software Q-VR: eccentricity chosen from *previous*
 *    frames' measured latencies (no hardware counters, extra control
 *    latency), composition and ATW on the GPU;
 *  - Q-VR   — LIWC + UCA, the full co-design.
 *
 * One class with two policy axes covers all four (and the ablation
 * combinations the paper does not show, e.g. fixed-e1 + UCA).
 */

#ifndef QVR_CORE_PIPELINE_FOVEATED_HPP
#define QVR_CORE_PIPELINE_FOVEATED_HPP

#include <optional>

#include "core/pipeline.hpp"

namespace qvr::core
{

/** How the per-frame fovea radius is chosen. */
enum class EccentricityPolicy
{
    Fixed,            ///< constant e1 (FFR)
    Liwc,             ///< hardware controller (DFR, Q-VR)
    SoftwareHistory,  ///< software loop on past measurements (SW-QVR)
};

/** Where composition + ATW execute. */
enum class CompositionPath
{
    GpuKernels,  ///< on the shader cores, contending with rendering
    Uca,         ///< on the dedicated UCA unit
};

/** Foveated-pipeline policy knobs. */
struct FoveatedPolicy
{
    EccentricityPolicy eccentricity = EccentricityPolicy::Liwc;
    CompositionPath composition = CompositionPath::Uca;
    double fixedE1 = 5.0;      ///< FFR's classic fovea
    double initialE1 = 5.0;    ///< dynamic policies start here

    /** Software-history controller: step size, measurement delay
     *  (the software loop sees frame N's result at frame N+delay),
     *  and its CPU overhead per frame. */
    double swStepDeg = 1.0;
    std::uint32_t swDelayFrames = 2;
    Seconds swControlOverhead = 0.5e-3;

    /**
     * UCA dropped-frame fill-in (Section 4.2): when the remote
     * layers have not decoded within this deadline after frame
     * issue, UCA reconstructs the frame from the previous frame's
     * resident layers at the new pose instead of stalling.  Only
     * effective on the Uca composition path; 0 disables.
     */
    Seconds reprojectionDeadline = 0.0;

    /**
     * Adaptive periphery quality (the "periphery quality" knob of
     * Section 3.2): an AIMD bitrate controller that lowers the
     * periphery encode quality when the remote branch overruns the
     * frame budget and restores it when there is headroom.  This is
     * a second, faster knob next to LIWC's e1: quality moves within
     * a frame-time, e1 moves the partition.  Disabled by default so
     * the paper-reproduction numbers stay pure.
     */
    bool adaptiveQuality = false;
    double minQuality = 0.6;
    double maxQuality = 1.0;
    /** Branch latency above this multiple of the frame budget cuts
     *  quality; below 80% of it, quality recovers. */
    double qualityPressure = 1.2;

    /**
     * Graceful-degradation state machine (off by default so the
     * paper-reproduction design points are untouched): ABR-style
     * periphery downgrade under remote misses, local-only fallback
     * when the link is down, hysteretic recovery.
     */
    DegradationConfig degradation;

    /**
     * Transport the periphery as the encoder-aligned compressed
     * frame layout (foveation/compressed_layout.hpp): the server
     * renders and ships a cropped, 32-pixel-aligned middle window
     * plus a reduced-resolution outer frame, and the payload pixel
     * counts are the actual buffer dimensions instead of analytic
     * annulus areas.  Off by default so the paper-reproduction
     * design points (and their pinned goldens) are untouched.
     */
    bool compressedLayout = false;

    /** Canonical design points. */
    static FoveatedPolicy ffr();
    static FoveatedPolicy dfr();
    static FoveatedPolicy swQvr();
    static FoveatedPolicy qvr();

    /** Q-VR with the compressed foveated frame layout ("Q-VR+CL"). */
    static FoveatedPolicy qvrCompressed();

    /** Q-VR hardened for faulty links: reprojection fallback plus
     *  adaptive quality plus the degradation controller. */
    static FoveatedPolicy resilient();
};

/**
 * Section 4.2 fill-in decision, extracted pure so the edge cases are
 * exactly testable: reproject when the fetch was skipped, the
 * periphery arrived unusable (retry budget exhausted), or it decodes
 * strictly after the deadline.  The comparison is strict — a layer
 * set decoded exactly at the deadline still composes fresh — and the
 * timing fallback needs a resident previous layer set and an armed
 * (> 0) deadline.
 */
inline bool
shouldReproject(bool skip_fetch, bool unusable, Seconds all_decoded,
                Seconds deadline, Seconds reprojection_deadline,
                bool have_prev_layers)
{
    return skip_fetch || unusable ||
           (reprojection_deadline > 0.0 && have_prev_layers &&
            all_decoded > deadline);
}

/** The collaborative foveated pipeline. */
class FoveatedPipeline : public Pipeline
{
  public:
    FoveatedPipeline(const PipelineConfig &cfg,
                     const FoveatedPolicy &policy);

    std::string name() const override;

    /** Access the controller (tests / convergence study). */
    const std::optional<Liwc> &liwc() const { return liwc_; }

    /** Mutable controller access (warm-starting a saved table). */
    std::optional<Liwc> &liwc() { return liwc_; }

    /** Frames reconstructed by the UCA fallback so far. */
    std::uint64_t reprojectedFrames() const { return reprojected_; }

    /** Age (frames) of the resident layer set being reprojected:
     *  0 when the last frame composed fresh, pinned to the pipeline
     *  depth (2) when a late arrival still refreshed the resident
     *  set, incrementing while fetches are skipped outright. */
    std::uint32_t staleReprojectionFrames() const
    {
        return staleFrames_;
    }

    /** Degradation controller (engaged iff policy enables it). */
    const std::optional<DegradationController> &degradation() const
    {
        return degradation_;
    }

  protected:
    FrameStats simulateFrame(const scene::FrameWorkload &frame,
                             Seconds issue_time) override;
    Seconds bottleneckFree() const override;

  private:
    double chooseE1(const scene::FrameWorkload &frame, Vec2 gaze,
                    LiwcDecision &decision_out);

    FoveatedPolicy policy_;
    std::optional<Liwc> liwc_;
    std::optional<DegradationController> degradation_;
    UcaTimingModel uca_;
    double e1_;
    /** Completion of the previous frame; the software controller
     *  cannot issue the next frame before it (Fig. 4-(b): control
     *  logic waits for rendering results to read back). */
    Seconds lastFrameDone_ = 0.0;
    /** Reprojection fallback state: do we hold a usable previous
     *  frame's layer set, and how stale is it (frames + degrees)? */
    bool havePrevLayers_ = false;
    std::uint32_t staleFrames_ = 0;
    double staleErrorDeg_ = 0.0;
    std::uint64_t reprojected_ = 0;
    double peripheryQuality_ = 1.0;

    /** (t_local, t_remote_branch) history for the software policy. */
    std::vector<std::pair<Seconds, Seconds>> history_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_PIPELINE_FOVEATED_HPP
