/**
 * @file
 * Frame-pipeline simulation framework.
 *
 * Every design point in the paper's evaluation (Section 6) is a
 * Pipeline: local-only rendering (Baseline), remote-only rendering,
 * static collaborative rendering, fixed/dynamic collaborative
 * foveated rendering (FFR/DFR), the pure-software Q-VR, and the full
 * Q-VR.  All of them consume the same workload stream and produce
 * per-frame FrameStats, so the bench harnesses can compare designs
 * row-for-row the way the paper's figures do.
 *
 * Execution model: each hardware unit (CPU control, mobile GPU, UCA,
 * remote server, downlink, decoder) is a busy-resource timeline;
 * frames are issued at the 90 Hz vsync cadence when resources allow,
 * or as soon as the serial bottleneck frees otherwise (a VR runtime
 * skips vsync slots rather than queueing unboundedly).
 */

#ifndef QVR_CORE_PIPELINE_HPP
#define QVR_CORE_PIPELINE_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/degradation.hpp"
#include "core/liwc.hpp"
#include "fault/schedule.hpp"
#include "core/uca.hpp"
#include "foveation/layers.hpp"
#include "gpu/postprocess.hpp"
#include "gpu/timing.hpp"
#include "net/channel.hpp"
#include "net/codec.hpp"
#include "net/stream.hpp"
#include "power/energy.hpp"
#include "remote/server.hpp"
#include "scene/benchmarks.hpp"
#include "scene/scene_model.hpp"
#include "scene/workload.hpp"

namespace qvr::core
{

/** Everything a pipeline needs to model one experiment. */
struct PipelineConfig
{
    scene::BenchmarkInfo benchmark;
    foveation::MarModel mar;
    gpu::GpuConfig gpuConfig;
    gpu::GpuCostModel gpuCost;
    gpu::postprocess::PostprocessCosts postCosts;
    remote::ServerConfig serverConfig;
    net::ChannelConfig channelConfig;
    net::CodecConfig codecConfig;
    power::PowerConfig powerConfig;
    LiwcConfig liwcConfig;
    UcaConfig ucaConfig;

    /** DVFS scale of the mobile GPU (1.0 = Table 2's 500 MHz;
     *  0.8 / 0.6 give the 400 / 300 MHz rows of Table 4). */
    double gpuFrequencyScale = 1.0;

    /** Fixed sensor-transport and display latencies counted in the
     *  end-to-end MTP (Section 5: 2 ms + 5 ms). */
    Seconds sensorLatency = 2e-3;
    Seconds displayLatency = 5e-3;

    /** CPU control-logic + local-setup time per frame (CL + LS). */
    Seconds controlLogicTime = 0.8e-3;

    /** Uplink time for pose/control messages to the server. */
    Seconds uplinkLatency = 1.0e-3;

    /**
     * Fault-injection timeline applied to the downlink channel and
     * the remote server (empty = fault-free).  The schedule is purely
     * a function of its construction inputs, so a seeded run replays
     * identically at any thread count.
     */
    fault::FaultSchedule faults;

    /** Bounded retry-with-backoff for lost layer transfers. */
    net::RetryPolicy retryPolicy;

    std::uint64_t seed = 1;

    /** Display geometry derived from the benchmark resolution. */
    foveation::DisplayConfig display() const;

    /** Build the default config for @p benchmark. */
    static PipelineConfig forBenchmark(const scene::BenchmarkInfo &b);
};

/** Per-frame measurements. */
struct FrameStats
{
    FrameIndex index = 0;
    double e1 = 0.0;               ///< fovea radius (deg); 0 if unused
    double e2 = 0.0;

    Seconds tLocalRender = 0.0;    ///< LR service time
    Seconds tRemoteRender = 0.0;   ///< RR service time
    Seconds tNetwork = 0.0;        ///< downlink serialisation
    Seconds tDecode = 0.0;         ///< VD service time
    Seconds tComposition = 0.0;    ///< C (on GPU or UCA)
    Seconds tAtw = 0.0;            ///< ATW (on GPU or UCA)
    Seconds tRemoteBranch = 0.0;   ///< LS->decoded (RR/net/VD overlap)

    Seconds mtpLatency = 0.0;      ///< motion-to-photon, end to end
    Seconds frameInterval = 0.0;   ///< vs. previous frame's display
    Seconds displayTime = 0.0;     ///< absolute sim time of photon-out
    Seconds gpuBusy = 0.0;         ///< mobile-GPU seconds this frame

    Bytes transmittedBytes = 0;
    double renderedResolutionFraction = 1.0;
    std::uint64_t localTriangles = 0;

    power::FrameEnergy energy;
    bool meetsFrameRate = false;   ///< frameInterval <= 1/90 s
    bool meetsMtp = false;         ///< mtpLatency <= 25 ms

    /** True when the frame was reconstructed by UCA from the
     *  previous frame's layers because the remote path missed its
     *  deadline (Section 4.2's dropped-frame fill-in). */
    bool reprojected = false;
    /** Accumulated pose error of the stale periphery, degrees. */
    double reprojectionErrorDeg = 0.0;

    /** Periphery encode-quality scalar applied this frame (1.0 =
     *  nominal bitrate; <1 trades periphery bitrate for latency). */
    double peripheryQuality = 1.0;

    /** DegradationController ladder level applied this frame (0 =
     *  full quality). */
    std::uint32_t degradationLevel = 0;
    /** The collaborative split was collapsed: periphery rendered
     *  on-device at low resolution (link declared down). */
    bool localFallback = false;
    /** Retransmission attempts for this frame's layer transfers. */
    std::uint32_t linkRetries = 0;
    /** Layers whose retry budget ran out (periphery unusable). */
    std::uint32_t lostLayers = 0;
    /** Time this frame's transfers sat stalled behind an outage. */
    Seconds linkStall = 0.0;

    /** Serving-stack telemetry (SessionDesign::Served only).  Queue
     *  wait of this frame's periphery request behind other users. */
    Seconds serveQueueWait = 0.0;
    /** False when the request was shed to the on-device fallback. */
    bool serveAdmitted = true;
    /** Whether the (admitted) render met its completion deadline. */
    bool serveDeadlineMet = true;
};

/** Aggregate fault/recovery accounting over a whole run (computed
 *  over every frame — no warm-up skip, unlike the mean* helpers). */
struct FaultCounters
{
    std::uint64_t reprojectedFrames = 0;
    std::uint64_t localFallbackFrames = 0;
    std::uint64_t degradedFrames = 0;  ///< degradationLevel > 0
    std::uint64_t linkRetries = 0;
    std::uint64_t lostLayers = 0;
    std::uint32_t maxDegradationLevel = 0;
    Seconds totalLinkStall = 0.0;
};

/** Whole-run result with aggregate helpers. */
struct PipelineResult
{
    std::string design;
    std::string benchmark;
    std::vector<FrameStats> frames;

    /** Frames skipped by aggregates (controller warm-up). */
    std::size_t warmupFrames = 30;

    double meanMtp() const;          ///< seconds
    double meanFps() const;          ///< from frame intervals
    double meanE1() const;
    double meanTransmittedBytes() const;
    double meanResolutionFraction() const;
    double meanEnergy() const;       ///< joules per frame
    double meanGpuBusy() const;
    double fpsCompliance() const;    ///< fraction of frames >= 90 Hz

    /** Fault/recovery event totals (all frames, no warm-up skip). */
    FaultCounters faultCounters() const;

  private:
    template <typename F>
    double meanOver(F &&f) const;
};

/** Abstract design point. */
class Pipeline
{
  public:
    explicit Pipeline(const PipelineConfig &cfg);
    virtual ~Pipeline() = default;

    virtual std::string name() const = 0;

    /**
     * Simulate one frame and advance the issue clock (vsync-paced,
     * bottleneck-aware).  This is the streaming API QvrSystem wraps;
     * run() is the batch convenience on top of it.
     */
    FrameStats step(const scene::FrameWorkload &frame);

    /** Simulate the whole workload stream. */
    PipelineResult run(const std::vector<scene::FrameWorkload> &frames);

    /** The downlink channel (live environment changes in examples
     *  and failure-injection tests go through here). */
    net::Channel &channel() { return channel_; }

    /** Live DVFS: change the GPU frequency scale for subsequent
     *  frames (driven by power::DvfsGovernor in the ablation). */
    void setFrequencyScale(double scale);

    /** Current DVFS scale. */
    double frequencyScale() const { return cfg_.gpuFrequencyScale; }

  protected:
    /** Per-frame hook implemented by each design. */
    virtual FrameStats simulateFrame(
        const scene::FrameWorkload &frame, Seconds issue_time) = 0;

    /** Issue cadence: earliest of next vsync vs. bottleneck-free. */
    virtual Seconds bottleneckFree() const = 0;

    const PipelineConfig &cfg() const { return cfg_; }

    /** Shared component models (constructed from cfg). */
    foveation::LayerGeometry geometry_;
    foveation::PartitionOracle oracle_;
    gpu::MobileGpuModel gpuModel_;
    remote::RemoteServer server_;
    net::VideoCodec codec_;
    power::EnergyModel energy_;

    /** Shared busy-resource timelines. */
    sim::BusyResource cpu_;
    sim::BusyResource gpu_;
    sim::BusyResource serverBusy_;
    net::Channel channel_;
    net::StreamSession stream_;

    /** Convenience: energy accounting for one frame. */
    power::FrameEnergy frameEnergy(Seconds gpu_busy, Seconds net_active,
                                   Seconds decode_time,
                                   Seconds frame_interval,
                                   bool liwc_on, bool uca_on) const;

    /** Centre-weighted fovea workload fraction (area^(1/gamma)). */
    double foveaWorkloadFraction(double e1, Vec2 gaze) const;

  private:
    PipelineConfig cfg_;
    Seconds issue_ = 0.0;
    Seconds lastDisplay_ = 0.0;
    bool hasLastDisplay_ = false;
};

/** Aggregate comparison helper: mean of a metric ratio vs. baseline,
 *  computed per-benchmark and averaged (how the paper reports). */
double meanSpeedup(const std::vector<PipelineResult> &baseline,
                   const std::vector<PipelineResult> &candidate);

}  // namespace qvr::core

#endif  // QVR_CORE_PIPELINE_HPP
