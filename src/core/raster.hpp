/**
 * @file
 * Functional tile-based triangle rasteriser.
 *
 * The paper's substrate, ATTILA-sim, is a rasterisation GPU
 * simulator: it both times AND draws.  Our gpu:: module covers the
 * timing half analytically; this class is the functional half — a
 * deterministic software rasteriser with the same organisation as
 * the modelled hardware (screen split into tiles, triangles binned
 * to tiles, per-tile edge-function traversal, depth test, Gouraud
 * interpolation).  It exists so experiments can run on *real pixels*:
 * rendering the foveated layers of an actual scene, compositing them
 * through the UCA path, and measuring image quality against the
 * native render (bench_image_quality), rather than asserting
 * perception claims on synthetic patterns alone.
 */

#ifndef QVR_CORE_RASTER_HPP
#define QVR_CORE_RASTER_HPP

#include <cstdint>
#include <vector>

#include "core/framebuffer.hpp"

namespace qvr::core
{

/** One post-transform vertex: screen-space position + colour. */
struct RasterVertex
{
    double x = 0.0;   ///< pixels
    double y = 0.0;   ///< pixels
    double z = 1.0;   ///< depth in [0, 1], smaller is nearer
    Rgb color;
};

/** One triangle ready for rasterisation. */
struct RasterTriangle
{
    RasterVertex v0;
    RasterVertex v1;
    RasterVertex v2;
};

/** Rasteriser throughput statistics (feed the timing calibration). */
struct RasterStats
{
    std::uint64_t trianglesSubmitted = 0;
    std::uint64_t trianglesCulled = 0;    ///< degenerate/offscreen
    std::uint64_t tileBinEntries = 0;     ///< triangle-tile pairs
    std::uint64_t fragmentsTested = 0;    ///< inside-edge fragments
    std::uint64_t fragmentsShaded = 0;    ///< passed the depth test
};

/**
 * Tile-binned rasteriser with a float depth buffer.
 *
 * Determinism: fill rules follow the top-left convention, so shared
 * edges are rasterised exactly once regardless of submission order
 * of adjacent triangles (no double-shading, no cracks).
 */
class TileRasterizer
{
  public:
    TileRasterizer(std::int32_t width, std::int32_t height,
                   std::int32_t tile_size = 16);

    /** Reset colour and depth. */
    void clear(const Rgb &color = Rgb{}, float depth = 1.0f);

    /** Submit one triangle. */
    void draw(const RasterTriangle &tri);

    /** Submit many. */
    void draw(const std::vector<RasterTriangle> &tris);

    const Image &color() const { return color_; }
    float depthAt(std::int32_t x, std::int32_t y) const;
    const RasterStats &stats() const { return stats_; }
    void resetStats() { stats_ = RasterStats{}; }

    std::int32_t width() const { return color_.width(); }
    std::int32_t height() const { return color_.height(); }

  private:
    void rasterizeInTile(const RasterTriangle &tri,
                         std::int32_t x0, std::int32_t y0,
                         std::int32_t x1, std::int32_t y1);

    Image color_;
    std::vector<float> depth_;
    std::int32_t tileSize_;
    RasterStats stats_;
};

/** Peak signal-to-noise ratio between two images (dB, higher is
 *  closer; identical images return +infinity). */
double psnr(const Image &a, const Image &b);

namespace testscene
{

/**
 * Procedural "chessboard hall" scene: a checkerboard ground plane
 * receding in depth with columns of coloured quads — enough
 * geometric and chromatic high-frequency content to expose
 * foveation artefacts, deterministic in its parameters.
 *
 * @param width/height  target framebuffer size (geometry scales)
 * @param detail        tessellation factor (triangles ~ detail^2)
 * @param view_shift    horizontal pan in pixels (camera yaw proxy)
 */
std::vector<RasterTriangle> chessHall(std::int32_t width,
                                      std::int32_t height,
                                      std::int32_t detail,
                                      double view_shift = 0.0);

}  // namespace testscene

}  // namespace qvr::core

#endif  // QVR_CORE_RASTER_HPP
