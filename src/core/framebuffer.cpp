#include "core/framebuffer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/log.hpp"

namespace qvr::core
{

Image::Image(std::int32_t width, std::int32_t height, Rgb fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill)
{
    QVR_REQUIRE(width > 0 && height > 0, "image must be non-empty");
}

const Rgb &
Image::at(std::int32_t x, std::int32_t y) const
{
    QVR_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
                "pixel (", x, ",", y, ") out of ", width_, "x", height_);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

Rgb &
Image::at(std::int32_t x, std::int32_t y)
{
    QVR_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
                "pixel (", x, ",", y, ") out of ", width_, "x", height_);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

Rgb *
Image::rowSpan(std::int32_t y)
{
    QVR_REQUIRE(y >= 0 && y < height_,
                "row ", y, " out of ", width_, "x", height_);
    QVR_REQUIRE(reinterpret_cast<std::uintptr_t>(pixels_.data()) %
                        kRasterAlign ==
                    0,
                "pixel raster lost its ", kRasterAlign,
                "-byte alignment");
    return pixels_.data() + static_cast<std::size_t>(y) * width_;
}

const Rgb *
Image::rowSpan(std::int32_t y) const
{
    QVR_REQUIRE(y >= 0 && y < height_,
                "row ", y, " out of ", width_, "x", height_);
    QVR_REQUIRE(reinterpret_cast<std::uintptr_t>(pixels_.data()) %
                        kRasterAlign ==
                    0,
                "pixel raster lost its ", kRasterAlign,
                "-byte alignment");
    return pixels_.data() + static_cast<std::size_t>(y) * width_;
}

const Rgb &
Image::texel(std::int32_t x, std::int32_t y) const
{
    const std::int32_t cx = clamp(x, 0, width_ - 1);
    const std::int32_t cy = clamp(y, 0, height_ - 1);
    return pixels_[static_cast<std::size_t>(cy) * width_ + cx];
}

Rgb
Image::sampleBilinear(double x, double y) const
{
    // Pixel centres at integer + 0.5.
    const double fx = x - 0.5;
    const double fy = y - 0.5;
    const auto x0 = static_cast<std::int32_t>(std::floor(fx));
    const auto y0 = static_cast<std::int32_t>(std::floor(fy));
    const float wx = static_cast<float>(fx - x0);
    const float wy = static_cast<float>(fy - y0);

    const Rgb &c00 = texel(x0, y0);
    const Rgb &c10 = texel(x0 + 1, y0);
    const Rgb &c01 = texel(x0, y0 + 1);
    const Rgb &c11 = texel(x0 + 1, y0 + 1);

    const Rgb top = c00 * (1.0f - wx) + c10 * wx;
    const Rgb bot = c01 * (1.0f - wx) + c11 * wx;
    return top * (1.0f - wy) + bot * wy;
}

void
Image::writePpm(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        QVR_FATAL("cannot open '", path, "' for writing");
    os << "P6\n" << width_ << ' ' << height_ << "\n255\n";
    auto quantise = [](float v) {
        const float c = clamp(v, 0.0f, 1.0f);
        return static_cast<unsigned char>(std::lround(c * 255.0f));
    };
    for (const Rgb &p : pixels_) {
        const unsigned char rgb[3] = {quantise(p.r), quantise(p.g),
                                      quantise(p.b)};
        os.write(reinterpret_cast<const char *>(rgb), 3);
    }
    if (!os)
        QVR_FATAL("write failed for '", path, "'");
}

double
Image::meanAbsDiff(const Image &other) const
{
    QVR_REQUIRE(width_ == other.width_ && height_ == other.height_,
                "image size mismatch");
    if (pixels_.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < pixels_.size(); i++) {
        sum += std::abs(pixels_[i].r - other.pixels_[i].r) +
               std::abs(pixels_[i].g - other.pixels_[i].g) +
               std::abs(pixels_[i].b - other.pixels_[i].b);
    }
    return sum / (3.0 * static_cast<double>(pixels_.size()));
}

double
Image::maxAbsDiff(const Image &other) const
{
    QVR_REQUIRE(width_ == other.width_ && height_ == other.height_,
                "image size mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < pixels_.size(); i++) {
        worst = std::max({worst,
            std::abs(static_cast<double>(pixels_[i].r - other.pixels_[i].r)),
            std::abs(static_cast<double>(pixels_[i].g - other.pixels_[i].g)),
            std::abs(static_cast<double>(pixels_[i].b - other.pixels_[i].b))});
    }
    return worst;
}

}  // namespace qvr::core
