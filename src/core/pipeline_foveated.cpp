#include "core/pipeline_foveated.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::core
{

FoveatedPolicy
FoveatedPolicy::ffr()
{
    FoveatedPolicy p;
    p.eccentricity = EccentricityPolicy::Fixed;
    p.composition = CompositionPath::GpuKernels;
    return p;
}

FoveatedPolicy
FoveatedPolicy::dfr()
{
    FoveatedPolicy p;
    p.eccentricity = EccentricityPolicy::Liwc;
    p.composition = CompositionPath::GpuKernels;
    return p;
}

FoveatedPolicy
FoveatedPolicy::swQvr()
{
    FoveatedPolicy p;
    p.eccentricity = EccentricityPolicy::SoftwareHistory;
    p.composition = CompositionPath::GpuKernels;
    return p;
}

FoveatedPolicy
FoveatedPolicy::qvr()
{
    FoveatedPolicy p;
    p.eccentricity = EccentricityPolicy::Liwc;
    p.composition = CompositionPath::Uca;
    // Fill in dropped frames from the previous layers once the
    // remote path slips past two frame budgets.
    p.reprojectionDeadline = 2.0 * vr_requirements::kFrameBudget;
    return p;
}

FoveatedPolicy
FoveatedPolicy::qvrCompressed()
{
    FoveatedPolicy p = qvr();
    p.compressedLayout = true;
    return p;
}

FoveatedPolicy
FoveatedPolicy::resilient()
{
    FoveatedPolicy p = qvr();
    p.adaptiveQuality = true;
    p.degradation.enabled = true;
    return p;
}

FoveatedPipeline::FoveatedPipeline(const PipelineConfig &cfg,
                                   const FoveatedPolicy &policy)
    : Pipeline(cfg), policy_(policy), uca_(cfg.ucaConfig),
      e1_(geometry_.clampE1(policy.eccentricity ==
                                    EccentricityPolicy::Fixed
                                ? policy.fixedE1
                                : policy.initialE1))
{
    if (policy_.eccentricity == EccentricityPolicy::Liwc) {
        const double pixels_per_tri =
            static_cast<double>(cfg.benchmark.pixelsPerEye()) /
            static_cast<double>(cfg.benchmark.meanTriangles);
        const double gpu_rate =
            gpuModel_.triangleThroughput(cfg.benchmark.shadingCost,
                                         pixels_per_tri) *
            cfg.gpuFrequencyScale;
        liwc_.emplace(cfg.liwcConfig, geometry_, gpu_rate,
                      cfg.channelConfig.nominalDownlink *
                          cfg.channelConfig.protocolEfficiency,
                      cfg.codecConfig.baseBitsPerPixel,
                      policy_.initialE1,
                      cfg.benchmark.centerConcentration);
    }
    if (policy_.degradation.enabled)
        degradation_.emplace(policy_.degradation);
}

std::string
FoveatedPipeline::name() const
{
    const bool uca_on = policy_.composition == CompositionPath::Uca;
    switch (policy_.eccentricity) {
      case EccentricityPolicy::Fixed:
        return uca_on ? "FFR+UCA" : "FFR";
      case EccentricityPolicy::Liwc:
        if (uca_on) {
            if (policy_.degradation.enabled)
                return "Q-VR-R";
            return policy_.compressedLayout ? "Q-VR+CL" : "Q-VR";
        }
        return "DFR";
      case EccentricityPolicy::SoftwareHistory:
        return uca_on ? "SW-QVR+UCA" : "SW-QVR";
    }
    return "Foveated";
}

double
FoveatedPipeline::chooseE1(const scene::FrameWorkload &frame, Vec2 gaze,
                           LiwcDecision &decision_out)
{
    switch (policy_.eccentricity) {
      case EccentricityPolicy::Fixed:
        return geometry_.clampE1(policy_.fixedE1);

      case EccentricityPolicy::Liwc:
        decision_out = liwc_->selectEccentricity(
            frame.motionDelta, frame.totalTriangles() * 2, gaze);
        return decision_out.e1;

      case EccentricityPolicy::SoftwareHistory: {
        // The software loop only sees measurements swDelayFrames old
        // (it must wait for rendering to complete and results to be
        // read back, Fig. 4-(b)).
        if (history_.size() >= policy_.swDelayFrames) {
            const auto &[t_local, t_remote] =
                history_[history_.size() - policy_.swDelayFrames];
            const double gap_ms = toMs(t_remote - t_local);
            // Proportional step, quantised to the software tuning
            // granularity and clamped to one step per frame.
            double step = clamp(gap_ms * 0.5, -1.0, 1.0) *
                          policy_.swStepDeg;
            if (std::abs(step) < 0.1)
                step = 0.0;
            e1_ = geometry_.clampE1(e1_ + step);
        }
        return e1_;
      }
    }
    QVR_PANIC("unhandled eccentricity policy");
}

FrameStats
FoveatedPipeline::simulateFrame(const scene::FrameWorkload &frame,
                                Seconds issue_time)
{
    FrameStats s;

    // Degradation decision for this frame (identity when disabled:
    // level 0, factors 1.0, no local fallback).  Probe frames inside
    // LocalOnly come out with localOnly=false and take the normal
    // remote path; a failed probe just reprojects.
    DegradationDecision deg;
    if (degradation_)
        deg = degradation_->decide();
    const bool local_fallback = deg.localOnly;
    s.degradationLevel = deg.level;
    s.localFallback = local_fallback;

    Seconds control = cfg().controlLogicTime;
    if (policy_.eccentricity == EccentricityPolicy::SoftwareHistory)
        control += policy_.swControlOverhead;
    const Seconds cpu_done = cpu_.serve(issue_time, control);

    const Vec2 gaze{frame.motionSeen.gaze.x, frame.motionSeen.gaze.y};
    LiwcDecision decision;
    double e1 = chooseE1(frame, gaze, decision);
    if (degradation_ && deg.clampLocalWork) {
        // Under fault pressure the ladder sheds remote latency by
        // cutting periphery bitrate; cap the fovea so LIWC cannot
        // chase the faulty link by ballooning local work past the
        // mobile GPU's budget (the two controllers must not fight),
        // and pin LIWC's internal setpoint to the clamp so recovery
        // ramps up from here rather than down from a runaway value.
        e1 = std::min(e1, geometry_.clampE1(policy_.initialE1));
        if (liwc_)
            liwc_->overrideE1(e1);
    }
    const auto &resolved = oracle_.resolve(e1, gaze);
    s.e1 = resolved.partition.e1;
    s.e2 = resolved.partition.e2;

    const double fovea_work =
        foveaWorkloadFraction(resolved.partition.e1, gaze);

    // Native-pixel partition of this frame, shared by the UCA pass
    // below and the compressed frame layout.
    const auto &display = geometry_.display();
    const double ppd = display.pixelsPerDegree();
    PixelPartition pp;
    pp.centerX = display.width / 2.0 + gaze.x * ppd;
    pp.centerY = display.height / 2.0 + gaze.y * ppd;
    pp.foveaRadius = resolved.partition.e1 * ppd;
    pp.middleRadius = resolved.partition.e2 * ppd;

    // ---- Local branch: full-resolution fovea on the mobile GPU. ---
    gpu::RenderJob local;
    local.triangles = static_cast<std::uint64_t>(
        static_cast<double>(frame.totalTriangles()) * 2.0 *
        fovea_work);
    local.shadedPixels = resolved.pixels.foveaPixels * 2.0;
    local.batches = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               cfg().benchmark.numBatches * fovea_work * 2.0));
    local.shadingCost = cfg().benchmark.shadingCost;
    local.frequencyScale = cfg().gpuFrequencyScale;
    s.tLocalRender = gpuModel_.renderSeconds(local);
    if (policy_.composition == CompositionPath::GpuKernels) {
        // Composition/ATW preempt rendering on the shader cores
        // (Fig. 4-(c)); UCA eliminates this inflation.
        s.tLocalRender *=
            1.0 + cfg().postCosts.contentionInflation;
    }
    s.localTriangles = local.triangles;
    const Seconds local_done = gpu_.serve(cpu_done, s.tLocalRender);

    // When the downlink is so backed up that this frame's layers
    // could never arrive inside the reprojection deadline, skip the
    // fetch entirely: the client keeps displaying from the resident
    // (stale) layers and lets the link drain.
    const bool skip_fetch =
        !local_fallback && policy_.reprojectionDeadline > 0.0 &&
        havePrevLayers_ &&
        stream_.linkNextFree() >
            issue_time + policy_.reprojectionDeadline;

    // ---- Remote branch: periphery layers on the server, streamed
    //      as one stream per layer per eye (Section 3.2).  In the
    //      LocalOnly fallback the whole branch is skipped and the
    //      periphery renders on-device below. ----------------------
    const double complexity = clamp(
        static_cast<double>(frame.totalTriangles()) /
            static_cast<double>(cfg().benchmark.meanTriangles),
        0.7, 1.4);

    // ABR ladder: linear-resolution downgrade of the streamed
    // periphery (pixel counts scale quadratically).  Guarded so the
    // level-0 path multiplies by nothing and stays bit-exact.
    double res_area = 1.0;
    if (deg.resolutionScale != 1.0)
        res_area = deg.resolutionScale * deg.resolutionScale;

    // Encoder-aligned compressed frame layout, derived per frame
    // from the resolved partition.  The ABR resolution downgrade
    // folds into the layout's subsample factors (coarser transported
    // buffers) instead of the analytic res_area multiplier, so the
    // degraded frame is still a legal, aligned layout.
    const bool compressed = policy_.compressedLayout;
    foveation::CompressedFrameLayout layout;
    if (compressed && !local_fallback) {
        foveation::CompressedLayoutParams lp;
        lp.centerX = pp.centerX;
        lp.centerY = pp.centerY;
        lp.foveaRadius = pp.foveaRadius;
        lp.middleRadius = pp.middleRadius;
        lp.blendBand = pp.blendBand;
        lp.sMiddle =
            resolved.pixels.middleFactor / deg.resolutionScale;
        lp.sOuter = resolved.pixels.outerFactor / deg.resolutionScale;
        lp.frameWidth = display.width;
        lp.frameHeight = display.height;
        layout = foveation::makeCompressedLayout(lp);
    }

    net::StreamResult streamed;
    double periphery_pixels_stereo = 0.0;
    if (!local_fallback) {
        gpu::RenderJob remote_job;
        remote_job.triangles = static_cast<std::uint64_t>(
            static_cast<double>(frame.totalTriangles()) * 2.0 *
            (1.0 - fovea_work));
        remote_job.shadedPixels =
            resolved.pixels.peripheryPixels() * 2.0;
        if (res_area != 1.0)
            remote_job.shadedPixels *= res_area;
        remote_job.batches = cfg().benchmark.numBatches * 2;
        remote_job.shadingCost = cfg().benchmark.shadingCost;
        s.tRemoteRender =
            compressed
                ? server_.renderPeriphery(remote_job, layout,
                                          cpu_done +
                                              cfg().uplinkLatency)
                : server_.renderSeconds(
                      remote_job, cpu_done + cfg().uplinkLatency);

        if (!skip_fetch) {
            const Seconds render_done = serverBusy_.serve(
                cpu_done + cfg().uplinkLatency, s.tRemoteRender);

            // Section 2.3/3.2: remote rendering, encoding and
            // transmission are chunk-pipelined within the frame —
            // streaming starts once the first slices of a layer are
            // rendered, so only a fraction of the render time sits
            // ahead of the transfer.
            const Seconds stream_start =
                render_done - 0.7 * s.tRemoteRender;

            std::vector<net::LayerPayload> payloads;
            double quality =
                policy_.adaptiveQuality ? peripheryQuality_ : 1.0;
            if (deg.qualityFactor != 1.0)
                quality *= deg.qualityFactor;
            // Compressed layout: payloads are the actual transported
            // buffers (tagged with their aligned dimensions, which
            // streamFrame verifies); the codec sees the buffer's
            // effective per-dimension subsample factor.  Legacy
            // path: analytic annulus pixel counts, untagged.
            auto layerPayload = [&](const foveation::CompressedLayer
                                        &cl,
                                    double analytic_pixels,
                                    double analytic_factor) {
                net::LayerPayload pl;
                if (compressed) {
                    pl.pixels = cl.pixels();
                    pl.bufWidth = cl.bufWidth;
                    pl.bufHeight = cl.bufHeight;
                    pl.compressed = codec_.compressedSize(
                        pl.pixels, complexity * quality,
                        std::sqrt(cl.map.scaleX * cl.map.scaleY));
                } else {
                    pl.pixels = analytic_pixels;
                    if (res_area != 1.0)
                        pl.pixels *= res_area;
                    pl.compressed = codec_.compressedSize(
                        pl.pixels, complexity * quality,
                        analytic_factor);
                }
                pl.renderReady = stream_start +
                                 0.3 * codec_.encodeTime(pl.pixels);
                return pl;
            };
            for (int eye = 0; eye < 2; eye++) {
                const net::LayerPayload middle = layerPayload(
                    layout.middle, resolved.pixels.middlePixels,
                    resolved.pixels.middleFactor);
                payloads.push_back(middle);

                periphery_pixels_stereo += middle.pixels;
                if (deg.dropOuterLayer)
                    continue;  // deepest rung: UCA extrapolates the
                               // outer ring from the middle layer
                const net::LayerPayload outer = layerPayload(
                    layout.outer, resolved.pixels.outerPixels,
                    resolved.pixels.outerFactor);
                payloads.push_back(outer);

                periphery_pixels_stereo += outer.pixels;
            }
            streamed = stream_.streamFrame(std::move(payloads));
            s.tDecode =
                codec_.decodeTime(periphery_pixels_stereo / 2.0);
        }
    }

    // ---- LocalOnly fallback: the collaborative split collapses and
    //      the periphery renders on-device at a fraction of native
    //      resolution (coarser LOD cuts geometry too). -------------
    Seconds local_periphery_done = 0.0;
    Seconds t_local_periphery = 0.0;
    if (local_fallback) {
        const double lp = policy_.degradation.localPeripheryScale;
        gpu::RenderJob fallback_job;
        fallback_job.triangles = static_cast<std::uint64_t>(
            static_cast<double>(frame.totalTriangles()) * 2.0 *
            (1.0 - fovea_work) * lp);
        fallback_job.shadedPixels =
            resolved.pixels.peripheryPixels() * 2.0 * lp * lp;
        fallback_job.batches = cfg().benchmark.numBatches;
        fallback_job.shadingCost = cfg().benchmark.shadingCost;
        fallback_job.frequencyScale = cfg().gpuFrequencyScale;
        t_local_periphery = gpuModel_.renderSeconds(fallback_job);
        local_periphery_done =
            gpu_.serve(local_done, t_local_periphery);
    }

    s.transmittedBytes = streamed.totalBytes;
    s.tNetwork = streamed.networkTime;
    s.tRemoteBranch =
        skip_fetch ? 0.0
                   : std::max(0.0, streamed.allDecoded - cpu_done);

    // ---- Composition + ATW. ---------------------------------------
    const double native_stereo =
        static_cast<double>(display.pixelCount()) * 2.0;
    Seconds done;
    Seconds gpu_post = 0.0;
    if (policy_.composition == CompositionPath::GpuKernels) {
        const double band_px = 16.0;
        const double edge_area =
            2.0 * kPi * band_px * ppd *
            (resolved.partition.e1 + resolved.partition.e2);
        const double edge_fraction = clamp(
            edge_area / static_cast<double>(display.pixelCount()),
            0.0, 0.15);
        s.tComposition = gpu::postprocess::foveatedCompositionTime(
                             gpuModel_, native_stereo, edge_fraction,
                             cfg().postCosts) /
                         cfg().gpuFrequencyScale;
        s.tAtw = gpu::postprocess::atwTime(gpuModel_, native_stereo,
                                           cfg().postCosts) /
                 cfg().gpuFrequencyScale;
        // Fig. 4-(c): the composition/ATW kernels contend with
        // rendering for the shader cores — kernel launch/drain,
        // coarse-grained preemption and cache refill stall the GPU
        // around them for roughly another 60% of their runtime
        // (Leng et al. [32] measure bursty slowdowns of this size).
        const Seconds queue_penalty =
            0.6 * (s.tComposition + s.tAtw);
        const Seconds start =
            std::max(local_done, streamed.allDecoded) + queue_penalty;
        done = gpu_.serve(start, s.tComposition + s.tAtw);
        gpu_post = s.tComposition + s.tAtw;
    } else {
        Seconds periphery_ready =
            local_fallback ? local_periphery_done
                           : streamed.allDecoded;
        Seconds deadline = issue_time + policy_.reprojectionDeadline;
        if (degradation_ && havePrevLayers_) {
            // Hardened pacing, display side: waiting on periphery
            // that lands more than one budget after the previous
            // display would blow the vsync cadence — reproject
            // instead (and let the controller read it as a miss).
            deadline = std::min(
                deadline,
                lastFrameDone_ + vr_requirements::kFrameBudget);
        }
        // A layer that exhausted its retry budget never arrived
        // intact: the resident (stale) layers are the only usable
        // periphery, exactly like a deadline miss.
        const bool unusable =
            streamed.lostLayers > 0 && havePrevLayers_ &&
            policy_.reprojectionDeadline > 0.0;
        if (!local_fallback &&
            shouldReproject(skip_fetch, unusable, streamed.allDecoded,
                            deadline, policy_.reprojectionDeadline,
                            havePrevLayers_)) {
            // Dropped-frame fill-in (Section 4.2): the resident
            // layers in DRAM are reprojected to the new pose instead
            // of stalling on the late transfer.  Staleness: when the
            // fetch was skipped the resident set ages another frame;
            // when it merely arrived late, it still refreshed the
            // resident set one pipeline-depth (~2 frames) behind.
            s.reprojected = true;
            reprojected_++;
            const double frame_motion =
                frame.motionDelta.dOrientation.norm() +
                frame.motionDelta.dGaze.norm();
            if (skip_fetch) {
                staleFrames_++;
                staleErrorDeg_ += frame_motion;
            } else {
                staleFrames_ = 2;
                staleErrorDeg_ = 2.0 * frame_motion;
            }
            s.reprojectionErrorDeg = staleErrorDeg_;
            periphery_ready = cpu_done;
        } else {
            staleFrames_ = 0;
            staleErrorDeg_ = 0.0;
        }

        // Both eyes tile through the same two UCA instances.
        UcaTimingResult eye0 = uca_.processFrame(
            display.width, display.height, pp, local_done,
            periphery_ready);
        UcaTimingResult eye1 = uca_.processFrame(
            display.width, display.height, pp, local_done,
            periphery_ready);
        done = std::max(eye0.done, eye1.done);
        s.tComposition = (eye0.busy + eye1.busy) / 2.0;
        s.tAtw = 0.0;  // fused into the unified pass
        havePrevLayers_ = true;
    }

    s.displayTime = done + cfg().displayLatency;
    s.mtpLatency = cfg().sensorLatency + (s.displayTime - issue_time);
    s.gpuBusy = s.tLocalRender + gpu_post + t_local_periphery;
    s.renderedResolutionFraction =
        geometry_.linearResolutionFraction(resolved.partition);
    lastFrameDone_ = done;

    const bool liwc_on =
        policy_.eccentricity == EccentricityPolicy::Liwc;
    const bool uca_on = policy_.composition == CompositionPath::Uca;
    s.energy = frameEnergy(
        s.gpuBusy, s.tNetwork, s.tDecode,
        std::max({s.gpuBusy, s.tRemoteBranch,
                  vr_requirements::kFrameBudget}),
        liwc_on, uca_on);

    // ---- Controller feedback (needs a fresh, unfaulted remote
    //      measurement: an outage stall, a lost transfer, or a frame
    //      whose e1 was clamped by the degradation ladder would
    //      poison the latency table with samples that do not match
    //      the decision LIWC actually made). ----------------------
    if (liwc_on && !skip_fetch && !local_fallback &&
        streamed.lostLayers == 0 && streamed.stallTime == 0.0 &&
        (!degradation_ || !deg.clampLocalWork)) {
        LiwcFeedback fb;
        fb.measuredLocal = s.tLocalRender;
        fb.measuredRemote = s.tRemoteBranch;
        fb.renderedTriangles = local.triangles;
        fb.peripheryPixels = periphery_pixels_stereo;
        fb.peripheryBytes = streamed.totalBytes;
        fb.ackThroughput = channel_.ackThroughput();
        liwc_->update(decision, fb);
    }
    history_.emplace_back(s.tLocalRender, s.tRemoteBranch);

    // AIMD periphery-quality controller (Section 3.2's quality
    // knob): multiplicative decrease under branch overrun, additive
    // recovery with headroom.
    s.peripheryQuality = peripheryQuality_;
    if (policy_.adaptiveQuality && !skip_fetch && !local_fallback) {
        const Seconds budget = vr_requirements::kFrameBudget;
        if (s.tRemoteBranch > policy_.qualityPressure * budget) {
            peripheryQuality_ =
                clamp(peripheryQuality_ * 0.85, policy_.minQuality,
                      policy_.maxQuality);
        } else if (s.tRemoteBranch < 0.8 * budget) {
            peripheryQuality_ =
                clamp(peripheryQuality_ + 0.02, policy_.minQuality,
                      policy_.maxQuality);
        }
    }

    // ---- Fault accounting + degradation feedback. -----------------
    s.linkRetries = streamed.retries;
    s.lostLayers = streamed.lostLayers;
    s.linkStall = streamed.stallTime;
    if (degradation_) {
        FrameHealth health;
        health.remoteAttempted = !local_fallback;
        health.remoteMiss = s.reprojected || streamed.lostLayers > 0;
        health.transferLost = streamed.lostLayers > 0;
        health.linkStall = streamed.stallTime;
        const double derated = cfg().channelConfig.nominalDownlink *
                               cfg().channelConfig.protocolEfficiency;
        health.ackFraction =
            derated > 0.0 ? channel_.ackThroughput() / derated : 1.0;
        degradation_->observe(health);
    }

    return s;
}

Seconds
FoveatedPipeline::bottleneckFree() const
{
    Seconds link_gate = stream_.linkNextFree();
    if (policy_.reprojectionDeadline > 0.0 && havePrevLayers_) {
        // With the fill-in fallback armed, a congested link does not
        // stall frame issue: new frames reproject from the resident
        // layers while the link drains.
        link_gate = std::min(
            link_gate, lastFrameDone_ + policy_.reprojectionDeadline);
        if (degradation_) {
            // Hardened pacing: the degradation controller guarantees
            // displayable content for every vsync (reprojection,
            // ABR-downgraded stream, or local fallback), so the link
            // may never push issue past one frame budget.
            link_gate =
                std::min(link_gate, lastFrameDone_ +
                                        vr_requirements::kFrameBudget);
        }
    }
    Seconds free = std::max({gpu_.nextFree(), link_gate,
                             serverBusy_.nextFree()});
    if (policy_.eccentricity == EccentricityPolicy::SoftwareHistory) {
        // Software control depends on reading back the previous
        // frame's results before it can configure the next one: the
        // pipeline loses its cross-frame overlap (Fig. 4-(b)).
        free = std::max(free, lastFrameDone_);
    }
    return free;
}

}  // namespace qvr::core
