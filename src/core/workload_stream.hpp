/**
 * @file
 * Streaming per-frame workload generation.
 *
 * generateExperimentWorkload() materialises a user's whole motion
 * trace and workload vector up front — fine for one pipeline, fatal
 * for fleet sweeps where 10,000+ simulated users would each pin
 * numFrames * sizeof(FrameWorkload) of memory before the first event
 * fires.  WorkloadStream produces the *identical* frame sequence one
 * frame at a time from O(1) retained state per user: the same motion
 * models stepped on the same fine grid, the same interaction Poisson
 * process, the same SceneModel — byte-for-byte equal to the eager
 * generator (pinned by tests/core/test_workload_stream.cpp).
 */

#ifndef QVR_CORE_WORKLOAD_STREAM_HPP
#define QVR_CORE_WORKLOAD_STREAM_HPP

#include <cstddef>

#include "core/qvr_system.hpp"
#include "motion/trace.hpp"
#include "scene/scene_model.hpp"

namespace qvr::core
{

/** Lazy, forward-only equivalent of generateExperimentWorkload(). */
class WorkloadStream
{
  public:
    explicit WorkloadStream(const ExperimentSpec &spec);

    /**
     * Generate the next frame's workload into internal scratch and
     * return a reference to it (valid until the following call).
     * Must not be called more than numFrames() times.
     */
    const scene::FrameWorkload &next();

    std::size_t numFrames() const { return numFrames_; }
    std::size_t produced() const { return frame_; }
    bool exhausted() const { return frame_ >= numFrames_; }

  private:
    /** @p root is the trace's Rng root; member initialisers split it
     *  in declaration order, replicating generateTrace()'s salts. */
    WorkloadStream(const ExperimentSpec &spec, Rng root);

    motion::TraceConfig traceCfg_;
    motion::HeadMotionModel head_;
    motion::GazeModel gaze_;
    motion::EyeTracker eye_;
    motion::MotionSensor imu_;
    Rng interactionRng_;
    scene::SceneModel scene_;

    std::size_t numFrames_ = 0;
    std::size_t frame_ = 0;
    Seconds fineDt_ = 0.0;
    Seconds now_ = 0.0;
    Seconds interactionUntil_ = 0.0;
    Seconds nextInteraction_ = 0.0;
    motion::MotionSample prevSeen_;

    scene::FrameWorkload scratch_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_WORKLOAD_STREAM_HPP
