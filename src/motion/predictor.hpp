/**
 * @file
 * Pose prediction for prefetch-ahead rendering.
 *
 * The static collaborative design must request frame N+3's background
 * at frame N — i.e. predict the user's pose >30 ms out, which the
 * paper flags as the accuracy cliff ("failing to predict users'
 * behaviors will trigger even higher end-to-end VR latency").  This
 * module implements the standard predictors that debate hinges on:
 *
 *  - HoldLast: assume the pose freezes (what naive prefetch does);
 *  - ConstantVelocity: extrapolate with an EWMA-smoothed velocity
 *    estimate (what shipping reprojection stacks use).
 *
 * The ablation bench quantifies how much CV prediction rescues the
 * static design — and why it still cannot fix it (rotations are
 * predictable; saccade-coupled content changes are not).
 */

#ifndef QVR_MOTION_PREDICTOR_HPP
#define QVR_MOTION_PREDICTOR_HPP

#include "motion/pose.hpp"

namespace qvr::motion
{

/** Prediction strategy. */
enum class PredictorKind
{
    HoldLast,
    ConstantVelocity,
};

/**
 * Streaming pose predictor: feed observed samples, ask for the pose
 * @p horizon seconds past the latest observation.
 */
class PosePredictor
{
  public:
    explicit PosePredictor(PredictorKind kind,
                           double velocity_alpha = 0.4);

    /** Observe the latest delivered sample. */
    void observe(const MotionSample &sample);

    /** Predict the pose @p horizon seconds after the last sample.
     *  Before two samples arrive, falls back to hold-last. */
    MotionSample predict(Seconds horizon) const;

    PredictorKind kind() const { return kind_; }
    bool primed() const { return haveTwo_; }

  private:
    PredictorKind kind_;
    double alpha_;
    MotionSample last_;
    Vec3 angVel_;   ///< deg/s, EWMA
    Vec3 linVel_;   ///< m/s, EWMA
    Vec2 gazeVel_;  ///< deg/s, EWMA
    bool haveOne_ = false;
    bool haveTwo_ = false;
};

}  // namespace qvr::motion

#endif  // QVR_MOTION_PREDICTOR_HPP
