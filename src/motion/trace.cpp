#include "motion/trace.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::motion
{

MotionDelta
MotionTrace::deltaAt(std::size_t i) const
{
    QVR_REQUIRE(i < samples.size(), "frame index out of range");
    if (i == 0)
        return MotionDelta{};
    return deltaBetween(samples[i - 1], samples[i]);
}

MotionTrace
generateTrace(const TraceConfig &cfg)
{
    QVR_REQUIRE(cfg.frameRate > 0.0 && cfg.numFrames > 0,
                "bad trace shape");

    Rng root(cfg.seed);
    HeadMotionModel head(cfg.head, root.split(1));
    GazeModel gaze(cfg.gaze, root.split(2));
    EyeTracker eye(cfg.eyeTracker, root.split(3));
    MotionSensor imu(cfg.motionSensor, root.split(4));
    Rng interaction_rng = root.split(5);

    MotionTrace trace;
    trace.samples.reserve(cfg.numFrames);
    trace.groundTruth.reserve(cfg.numFrames);

    const Seconds frame_dt = 1.0 / cfg.frameRate;
    // Advance the continuous models on a fine grid so sensors can
    // sample at their own (higher) frequencies between frames.
    const Seconds fine_dt =
        std::min({frame_dt, eye.samplePeriod(), imu.samplePeriod()}) / 2.0;

    Seconds now = 0.0;
    Seconds interaction_until = 0.0;
    Seconds next_interaction =
        interaction_rng.exponential(cfg.interactionRate);

    for (std::size_t f = 0; f < cfg.numFrames; f++) {
        const Seconds frame_time =
            static_cast<double>(f + 1) * frame_dt;
        while (now < frame_time) {
            const Seconds dt = std::min(fine_dt, frame_time - now);
            now += dt;
            const HeadPose &pose = head.step(dt);
            const GazeAngles &g = gaze.step(dt);
            imu.observe(now, pose);
            eye.observe(now, g);
        }

        // Interaction episodes arrive as a Poisson process.
        if (now >= next_interaction) {
            interaction_until =
                now + interaction_rng.exponential(
                          1.0 / cfg.interactionDuration);
            next_interaction =
                now + interaction_rng.exponential(cfg.interactionRate);
        }
        const bool interacting = now < interaction_until;

        MotionSample seen;
        seen.timestamp = now;
        seen.head = imu.delivered(now);
        seen.gaze = eye.delivered(now);
        seen.interacting = interacting;
        trace.samples.push_back(seen);

        MotionSample truth;
        truth.timestamp = now;
        truth.head = head.pose();
        truth.gaze = gaze.gaze();
        truth.interacting = interacting;
        trace.groundTruth.push_back(truth);
    }
    return trace;
}

}  // namespace qvr::motion
