#include "motion/gaze_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::motion
{

GazeModel::GazeModel(const GazeModelConfig &cfg, Rng rng)
    : cfg_(cfg), rng_(rng)
{
    fixationRemaining_ = cfg_.fixationMeanDuration;
}

void
GazeModel::beginSaccade()
{
    saccades_++;
    saccadeStart_ = gaze_;

    double amplitude = std::min(
        cfg_.saccadeMaxAmplitude,
        rng_.exponential(1.0 / cfg_.saccadeMeanAmplitude));

    Vec2 direction;
    if (rng_.chance(cfg_.recenterBias) && gaze_.norm() > 1.0) {
        // Re-centre: aim back toward straight-ahead.
        direction = gaze_ * (-1.0 / gaze_.norm());
        amplitude = std::min(amplitude, gaze_.norm());
    } else {
        const double theta = rng_.uniform(0.0, 2.0 * kPi);
        direction = Vec2{std::cos(theta), std::sin(theta)};
    }

    saccadeTarget_ = gaze_ + direction * amplitude;
    saccadeTarget_.x =
        clamp(saccadeTarget_.x, -cfg_.gazeRangeH, cfg_.gazeRangeH);
    saccadeTarget_.y =
        clamp(saccadeTarget_.y, -cfg_.gazeRangeV, cfg_.gazeRangeV);

    // Saccade main-sequence: duration ~ 2.2 ms/deg + 21 ms.
    const double actual =
        (saccadeTarget_ - saccadeStart_).norm();
    saccadeDuration_ = 0.021 + 0.0022 * actual;
    saccadeRemaining_ = saccadeDuration_;
}

const GazeAngles &
GazeModel::step(Seconds dt)
{
    QVR_REQUIRE(dt > 0.0, "non-positive dt");

    if (saccadeRemaining_ > 0.0) {
        saccadeRemaining_ = std::max(0.0, saccadeRemaining_ - dt);
        // Minimum-jerk-ish position profile via smoothstep.
        const double t =
            1.0 - saccadeRemaining_ / saccadeDuration_;
        const double s = t * t * (3.0 - 2.0 * t);
        gaze_ = saccadeStart_ + (saccadeTarget_ - saccadeStart_) * s;
        if (saccadeRemaining_ == 0.0) {
            const double dur = std::max(
                cfg_.fixationMinDuration,
                rng_.exponential(1.0 / cfg_.fixationMeanDuration));
            fixationRemaining_ = dur;
        }
        return gaze_;
    }

    // Fixation: micro-drift.
    gaze_.x += rng_.normal(0.0, cfg_.microDriftSigma) * dt;
    gaze_.y += rng_.normal(0.0, cfg_.microDriftSigma) * dt;
    fixationRemaining_ -= dt;
    if (fixationRemaining_ <= 0.0)
        beginSaccade();
    return gaze_;
}

}  // namespace qvr::motion
