/**
 * @file
 * Fixation/saccade gaze model.
 *
 * Human gaze alternates between fixations (200-500 ms of near-still
 * gaze with micro-drift) and ballistic saccades (20-80 ms jumps of up
 * to ~20 degrees).  Q-VR's fovea follows the gaze, so the fovea-centre
 * movement statistics directly feed LIWC's 4-bit fovea-movement code
 * and the scene-complexity correlation.
 */

#ifndef QVR_MOTION_GAZE_MODEL_HPP
#define QVR_MOTION_GAZE_MODEL_HPP

#include "common/rng.hpp"
#include "motion/pose.hpp"

namespace qvr::motion
{

/** Tunables for the gaze process. */
struct GazeModelConfig
{
    double fixationMeanDuration = 0.30;   ///< s
    double fixationMinDuration = 0.08;    ///< s
    double saccadeMeanAmplitude = 8.0;    ///< deg
    double saccadeMaxAmplitude = 20.0;    ///< deg
    double microDriftSigma = 0.3;         ///< deg/s during fixation
    /** Gaze stays within the comfortable oculomotor range (deg). */
    double gazeRangeH = 30.0;
    double gazeRangeV = 20.0;
    /** Fraction of saccades that re-centre toward (0,0), reflecting
     *  the strong central bias of VR gaze datasets. */
    double recenterBias = 0.4;
};

/**
 * Discrete-step gaze model.  step(dt) advances the fixation clock,
 * possibly executing a saccade, and returns gaze angles relative to
 * the head.
 */
class GazeModel
{
  public:
    GazeModel(const GazeModelConfig &cfg, Rng rng);

    /** Advance by @p dt and return gaze angles (deg, head-relative). */
    const GazeAngles &step(Seconds dt);

    const GazeAngles &gaze() const { return gaze_; }

    /** True while a saccade is in flight (tracker confidence drops). */
    bool inSaccade() const { return saccadeRemaining_ > 0.0; }

    /** Number of saccades executed so far (diagnostics). */
    std::uint64_t saccadeCount() const { return saccades_; }

  private:
    void beginSaccade();

    GazeModelConfig cfg_;
    Rng rng_;
    GazeAngles gaze_;
    GazeAngles saccadeTarget_;
    Seconds fixationRemaining_ = 0.0;
    Seconds saccadeRemaining_ = 0.0;
    Seconds saccadeDuration_ = 0.0;
    GazeAngles saccadeStart_;
    std::uint64_t saccades_ = 0;
};

}  // namespace qvr::motion

#endif  // QVR_MOTION_GAZE_MODEL_HPP
