/**
 * @file
 * Sensor front-ends: the HMD motion (IMU) sensor and the eye tracker.
 *
 * Per the paper (Section 7), trackers run on their own frequencies in
 * parallel with the graphics pipeline; the render loop consumes the
 * *latest delivered* sample, which lags true motion by the sensor
 * period plus a ~2 ms transport latency.  The eye tracker adds <1 deg
 * of angular noise (HTC Vive Pro Eye class, 120 Hz).
 */

#ifndef QVR_MOTION_TRACKER_HPP
#define QVR_MOTION_TRACKER_HPP

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "motion/gaze_model.hpp"
#include "motion/head_model.hpp"
#include "motion/pose.hpp"

namespace qvr::motion
{

/** Eye-tracker characteristics (defaults: Vive Pro Eye class).
 *
 * Tracker error decomposes into a slowly drifting *bias* (calibration
 * residual, the "accuracy" a datasheet quotes) and a much smaller
 * sample-to-sample *jitter* (precision).  Modelling all error as
 * white noise would destroy the frame-to-frame gaze deltas LIWC's
 * motion codec consumes. */
struct EyeTrackerConfig
{
    Hertz sampleRate = 120.0;
    double accuracyDeg = 1.0;     ///< stationary bias magnitude (RMS)
    double jitterDeg = 0.08;      ///< per-sample precision (RMS)
    double biasReversion = 0.2;   ///< bias mean-reversion rate (1/s)
    Seconds transportLatency = 2e-3;
};

/** HMD IMU/positional-tracking characteristics. */
struct MotionSensorConfig
{
    Hertz sampleRate = 500.0;
    double positionNoise = 0.5e-3;     ///< metres RMS
    double orientationNoise = 0.05;    ///< degrees RMS
    Seconds transportLatency = 2e-3;
};

/**
 * Samples an underlying continuous model at the sensor's own rate and
 * exposes, for any query time, the newest sample whose capture +
 * transport latency has elapsed.
 */
class EyeTracker
{
  public:
    EyeTracker(const EyeTrackerConfig &cfg, Rng rng);

    /** Record a ground-truth gaze observation at time @p t. */
    void observe(Seconds t, const GazeAngles &truth);

    /** Latest delivered (noisy, delayed) gaze at query time @p t. */
    GazeAngles delivered(Seconds t) const;

    Seconds samplePeriod() const { return 1.0 / cfg_.sampleRate; }

  private:
    struct Sample
    {
        Seconds captured;
        GazeAngles gaze;
    };

    EyeTrackerConfig cfg_;
    Rng rng_;
    std::vector<Sample> history_;
    Seconds nextSample_ = 0.0;
    GazeAngles bias_;       ///< current calibration-residual bias
    Seconds lastBiasStep_ = 0.0;
};

/** Same delivery semantics for the 6-DoF head pose. */
class MotionSensor
{
  public:
    MotionSensor(const MotionSensorConfig &cfg, Rng rng);

    void observe(Seconds t, const HeadPose &truth);
    HeadPose delivered(Seconds t) const;

    Seconds samplePeriod() const { return 1.0 / cfg_.sampleRate; }

  private:
    struct Sample
    {
        Seconds captured;
        HeadPose pose;
    };

    MotionSensorConfig cfg_;
    Rng rng_;
    std::vector<Sample> history_;
    Seconds nextSample_ = 0.0;
};

}  // namespace qvr::motion

#endif  // QVR_MOTION_TRACKER_HPP
