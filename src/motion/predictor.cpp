#include "motion/predictor.hpp"

#include "common/log.hpp"

namespace qvr::motion
{

PosePredictor::PosePredictor(PredictorKind kind, double velocity_alpha)
    : kind_(kind), alpha_(velocity_alpha)
{
    QVR_REQUIRE(velocity_alpha > 0.0 && velocity_alpha <= 1.0,
                "velocity alpha outside (0,1]");
}

void
PosePredictor::observe(const MotionSample &sample)
{
    if (haveOne_) {
        const Seconds dt = sample.timestamp - last_.timestamp;
        if (dt > 1e-9) {
            const Vec3 ang_inst =
                (sample.head.orientation - last_.head.orientation) *
                (1.0 / dt);
            const Vec3 lin_inst =
                (sample.head.position - last_.head.position) *
                (1.0 / dt);
            const Vec2 gaze_inst =
                (sample.gaze - last_.gaze) * (1.0 / dt);
            if (!haveTwo_) {
                angVel_ = ang_inst;
                linVel_ = lin_inst;
                gazeVel_ = gaze_inst;
            } else {
                angVel_ = angVel_ * (1.0 - alpha_) +
                          ang_inst * alpha_;
                linVel_ = linVel_ * (1.0 - alpha_) +
                          lin_inst * alpha_;
                gazeVel_ = gazeVel_ * (1.0 - alpha_) +
                           gaze_inst * alpha_;
            }
            haveTwo_ = true;
        }
    }
    last_ = sample;
    haveOne_ = true;
}

MotionSample
PosePredictor::predict(Seconds horizon) const
{
    QVR_REQUIRE(horizon >= 0.0, "negative prediction horizon");
    MotionSample out = last_;
    out.timestamp = last_.timestamp + horizon;
    if (kind_ == PredictorKind::HoldLast || !haveTwo_)
        return out;

    out.head.orientation = last_.head.orientation +
                           angVel_ * horizon;
    out.head.position = last_.head.position + linVel_ * horizon;
    out.gaze = last_.gaze + gazeVel_ * horizon;
    return out;
}

}  // namespace qvr::motion
