/**
 * @file
 * Pose and motion-sample value types shared by the trackers, the
 * scene-complexity model and LIWC's motion codec.
 */

#ifndef QVR_MOTION_POSE_HPP
#define QVR_MOTION_POSE_HPP

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace qvr::motion
{

/**
 * 6-DoF head pose: metres for position, degrees for orientation
 * (yaw around vertical, pitch, roll).
 */
struct HeadPose
{
    Vec3 position;     ///< metres, room coordinates
    Vec3 orientation;  ///< degrees: {yaw, pitch, roll}

    /** Component-wise delta (this - other). */
    HeadPose
    delta(const HeadPose &other) const
    {
        return HeadPose{position - other.position,
                        orientation - other.orientation};
    }
};

/**
 * Gaze direction as angular offset from the view centre, in degrees.
 * x is horizontal eccentricity, y vertical.
 */
using GazeAngles = Vec2;

/** One fused sensor sample delivered to the rendering pipeline. */
struct MotionSample
{
    Seconds timestamp = 0.0;     ///< capture time
    HeadPose head;               ///< 6-DoF head pose
    GazeAngles gaze;             ///< gaze angles relative to HMD
    bool interacting = false;    ///< user currently manipulating scene
};

/**
 * Per-frame motion deltas, the inputs to LIWC's motion codec
 * (Section 4.1: "changes of user motion between two frames").
 */
struct MotionDelta
{
    Vec3 dPosition;      ///< metres/frame
    Vec3 dOrientation;   ///< degrees/frame
    Vec2 dGaze;          ///< fovea-centre movement, degrees/frame

    /** Magnitude summary used by the scene-complexity correlation. */
    double
    headSpeed() const
    {
        return dPosition.norm() + dOrientation.norm() / 60.0;
    }
};

/** Compute deltas between two consecutive samples. */
inline MotionDelta
deltaBetween(const MotionSample &prev, const MotionSample &curr)
{
    MotionDelta d;
    d.dPosition = curr.head.position - prev.head.position;
    d.dOrientation = curr.head.orientation - prev.head.orientation;
    d.dGaze = curr.gaze - prev.gaze;
    return d;
}

}  // namespace qvr::motion

#endif  // QVR_MOTION_POSE_HPP
