#include "motion/tracker.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::motion
{

EyeTracker::EyeTracker(const EyeTrackerConfig &cfg, Rng rng)
    : cfg_(cfg), rng_(rng)
{
    QVR_REQUIRE(cfg.sampleRate > 0.0, "eye tracker rate must be positive");
}

void
EyeTracker::observe(Seconds t, const GazeAngles &truth)
{
    // Sensor captures at its own cadence; drop observations between
    // sample instants.
    if (t + 1e-12 < nextSample_)
        return;
    nextSample_ = t + samplePeriod();

    // Bias drifts as an OU process with the datasheet accuracy as
    // its stationary magnitude.
    const Seconds dt = std::max(1e-4, t - lastBiasStep_);
    lastBiasStep_ = t;
    const double decay = std::exp(-cfg_.biasReversion * dt);
    const double sigma = cfg_.accuracyDeg / std::sqrt(2.0);
    const double diffusion =
        sigma * std::sqrt(std::max(0.0, 1.0 - decay * decay));
    bias_.x = bias_.x * decay + diffusion * rng_.normal();
    bias_.y = bias_.y * decay + diffusion * rng_.normal();

    GazeAngles noisy = truth + bias_;
    noisy.x += rng_.normal(0.0, cfg_.jitterDeg);
    noisy.y += rng_.normal(0.0, cfg_.jitterDeg);
    history_.push_back(Sample{t, noisy});
    // Keep the history bounded; delivery only needs recent samples.
    if (history_.size() > 64)
        history_.erase(history_.begin(), history_.begin() + 32);
}

GazeAngles
EyeTracker::delivered(Seconds t) const
{
    const Seconds visible = t - cfg_.transportLatency;
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->captured <= visible)
            return it->gaze;
    }
    return history_.empty() ? GazeAngles{} : history_.front().gaze;
}

MotionSensor::MotionSensor(const MotionSensorConfig &cfg, Rng rng)
    : cfg_(cfg), rng_(rng)
{
    QVR_REQUIRE(cfg.sampleRate > 0.0, "motion sensor rate must be positive");
}

void
MotionSensor::observe(Seconds t, const HeadPose &truth)
{
    if (t + 1e-12 < nextSample_)
        return;
    nextSample_ = t + samplePeriod();
    HeadPose noisy = truth;
    noisy.position.x += rng_.normal(0.0, cfg_.positionNoise);
    noisy.position.y += rng_.normal(0.0, cfg_.positionNoise);
    noisy.position.z += rng_.normal(0.0, cfg_.positionNoise);
    noisy.orientation.x += rng_.normal(0.0, cfg_.orientationNoise);
    noisy.orientation.y += rng_.normal(0.0, cfg_.orientationNoise);
    noisy.orientation.z += rng_.normal(0.0, cfg_.orientationNoise);
    history_.push_back(Sample{t, noisy});
    if (history_.size() > 256)
        history_.erase(history_.begin(), history_.begin() + 128);
}

HeadPose
MotionSensor::delivered(Seconds t) const
{
    const Seconds visible = t - cfg_.transportLatency;
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->captured <= visible)
            return it->pose;
    }
    return history_.empty() ? HeadPose{} : history_.front().pose;
}

}  // namespace qvr::motion
