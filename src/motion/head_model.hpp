/**
 * @file
 * Stochastic 6-DoF head-motion model.
 *
 * Substitution note (DESIGN.md S2): the paper drives its evaluation
 * with real HMD traces; we generate statistically similar motion with
 * an Ornstein-Uhlenbeck angular-velocity process (smooth wandering)
 * punctuated by occasional rapid reorientations ("head saccades"),
 * which is the standard first-order model for seated/standing VR
 * users.  What downstream consumers need is realistic *frame-to-frame
 * deltas* and their correlation with scene-complexity change.
 */

#ifndef QVR_MOTION_HEAD_MODEL_HPP
#define QVR_MOTION_HEAD_MODEL_HPP

#include "common/rng.hpp"
#include "motion/pose.hpp"

namespace qvr::motion
{

/** Tunable intensity of the head-motion process. */
struct HeadModelConfig
{
    /** Mean-reversion rate of angular velocity (1/s). */
    double angularReversion = 4.0;
    /** Stationary std-dev of angular velocity (deg/s). */
    double angularSigma = 30.0;
    /** Mean-reversion rate of linear velocity (1/s). */
    double linearReversion = 2.0;
    /** Stationary std-dev of linear velocity (m/s). */
    double linearSigma = 0.15;
    /** Mean rate of rapid reorientations (events/s). */
    double turnRate = 0.25;
    /** Peak angular speed during a rapid turn (deg/s). */
    double turnSpeed = 180.0;
    /** Duration of a rapid turn (s). */
    double turnDuration = 0.35;
    /** Yaw is unbounded; pitch/roll are softly clamped (deg). */
    double pitchLimit = 60.0;
    double rollLimit = 30.0;
};

/**
 * Continuous-time head model advanced in discrete steps.  step(dt)
 * integrates the velocity processes and returns the new pose.
 */
class HeadMotionModel
{
  public:
    HeadMotionModel(const HeadModelConfig &cfg, Rng rng);

    /** Advance by @p dt seconds and return the resulting pose. */
    const HeadPose &step(Seconds dt);

    const HeadPose &pose() const { return pose_; }

    /** Instantaneous angular speed (deg/s), for diagnostics. */
    double angularSpeed() const { return angVel_.norm(); }

  private:
    void maybeStartTurn(Seconds dt);
    double ouStep(double value, double reversion, double sigma,
                  Seconds dt);

    HeadModelConfig cfg_;
    Rng rng_;
    HeadPose pose_;
    Vec3 angVel_;    ///< deg/s
    Vec3 linVel_;    ///< m/s
    Seconds turnRemaining_ = 0.0;
    double turnDirection_ = 0.0;  ///< signed yaw rate during a turn
};

}  // namespace qvr::motion

#endif  // QVR_MOTION_HEAD_MODEL_HPP
