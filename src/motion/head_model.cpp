#include "motion/head_model.hpp"

#include <cmath>

#include "common/log.hpp"

namespace qvr::motion
{

HeadMotionModel::HeadMotionModel(const HeadModelConfig &cfg, Rng rng)
    : cfg_(cfg), rng_(rng)
{
    QVR_REQUIRE(cfg.angularReversion > 0.0 && cfg.linearReversion > 0.0,
                "reversion rates must be positive");
}

double
HeadMotionModel::ouStep(double value, double reversion, double sigma,
                        Seconds dt)
{
    // Exact discretisation of the OU process:
    //   v' = v e^{-k dt} + sigma sqrt(1 - e^{-2 k dt}) N(0,1)
    const double decay = std::exp(-reversion * dt);
    const double diffusion =
        sigma * std::sqrt(std::max(0.0, 1.0 - decay * decay));
    return value * decay + diffusion * rng_.normal();
}

void
HeadMotionModel::maybeStartTurn(Seconds dt)
{
    if (turnRemaining_ > 0.0)
        return;
    // Poisson arrival of rapid reorientations.
    if (rng_.chance(1.0 - std::exp(-cfg_.turnRate * dt))) {
        turnRemaining_ = cfg_.turnDuration;
        turnDirection_ = rng_.chance(0.5) ? 1.0 : -1.0;
    }
}

const HeadPose &
HeadMotionModel::step(Seconds dt)
{
    QVR_REQUIRE(dt > 0.0, "non-positive dt");
    maybeStartTurn(dt);

    angVel_.x = ouStep(angVel_.x, cfg_.angularReversion,
                       cfg_.angularSigma, dt);
    angVel_.y = ouStep(angVel_.y, cfg_.angularReversion,
                       cfg_.angularSigma * 0.6, dt);
    angVel_.z = ouStep(angVel_.z, cfg_.angularReversion,
                       cfg_.angularSigma * 0.3, dt);

    double yaw_rate = angVel_.x;
    if (turnRemaining_ > 0.0) {
        // Raised-cosine velocity profile for a smooth fast turn.
        const double phase = 1.0 - turnRemaining_ / cfg_.turnDuration;
        yaw_rate += turnDirection_ * cfg_.turnSpeed *
                    0.5 * (1.0 - std::cos(2.0 * kPi * phase));
        turnRemaining_ -= dt;
    }

    linVel_.x = ouStep(linVel_.x, cfg_.linearReversion,
                       cfg_.linearSigma, dt);
    linVel_.y = ouStep(linVel_.y, cfg_.linearReversion,
                       cfg_.linearSigma * 0.4, dt);
    linVel_.z = ouStep(linVel_.z, cfg_.linearReversion,
                       cfg_.linearSigma, dt);

    pose_.orientation.x += yaw_rate * dt;
    pose_.orientation.y += angVel_.y * dt;
    pose_.orientation.z += angVel_.z * dt;
    pose_.position += linVel_ * dt;

    // Soft clamp pitch/roll: reflect velocity at the limits so users
    // do not tumble.
    auto soft_clamp = [](double &angle, double &vel, double limit) {
        if (angle > limit) {
            angle = limit;
            vel = -std::abs(vel) * 0.5;
        } else if (angle < -limit) {
            angle = -limit;
            vel = std::abs(vel) * 0.5;
        }
    };
    soft_clamp(pose_.orientation.y, angVel_.y, cfg_.pitchLimit);
    soft_clamp(pose_.orientation.z, angVel_.z, cfg_.rollLimit);

    return pose_;
}

}  // namespace qvr::motion
