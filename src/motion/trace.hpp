/**
 * @file
 * Per-frame motion trace generation.
 *
 * Composes the head model, gaze model and sensor front-ends into the
 * sequence of MotionSamples the render loop actually sees at each
 * frame boundary, plus interaction episodes (the user grabbing or
 * manipulating scene objects, which spikes interactive-object
 * complexity in the scene model).
 */

#ifndef QVR_MOTION_TRACE_HPP
#define QVR_MOTION_TRACE_HPP

#include <vector>

#include "common/rng.hpp"
#include "motion/gaze_model.hpp"
#include "motion/head_model.hpp"
#include "motion/tracker.hpp"

namespace qvr::motion
{

/** Everything needed to synthesise a frame-aligned motion trace. */
struct TraceConfig
{
    double frameRate = 90.0;       ///< frames per second
    std::size_t numFrames = 300;
    HeadModelConfig head;
    GazeModelConfig gaze;
    EyeTrackerConfig eyeTracker;
    MotionSensorConfig motionSensor;
    /** Mean rate of interaction episodes (per second). */
    double interactionRate = 0.2;
    /** Mean duration of an interaction episode (s). */
    double interactionDuration = 1.5;
    std::uint64_t seed = 1;
};

/** Frame-aligned trace plus ground truth for error analysis. */
struct MotionTrace
{
    std::vector<MotionSample> samples;       ///< what the pipeline sees
    std::vector<MotionSample> groundTruth;   ///< noiseless, zero-latency

    std::size_t size() const { return samples.size(); }

    /** Delta between frame @p i and its predecessor (zero for i==0). */
    MotionDelta deltaAt(std::size_t i) const;
};

/** Generate a trace; deterministic in cfg.seed. */
MotionTrace generateTrace(const TraceConfig &cfg);

}  // namespace qvr::motion

#endif  // QVR_MOTION_TRACE_HPP
