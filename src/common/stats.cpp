#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr
{

void
RunningStat::add(double x)
{
    count_++;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Ewma::Ewma(double alpha) : alpha_(alpha)
{
    QVR_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA alpha out of (0,1]");
}

void
Ewma::add(double x)
{
    if (!primed_) {
        value_ = x;
        primed_ = true;
    } else {
        value_ = (1.0 - alpha_) * value_ + alpha_ * x;
    }
}

void
Ewma::reset()
{
    value_ = 0.0;
    primed_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    QVR_REQUIRE(hi > lo && bins > 0, "bad histogram shape");
}

void
Histogram::add(double x)
{
    total_++;
    if (x < lo_) {
        underflow_++;
    } else if (x >= hi_) {
        overflow_++;
    } else {
        auto bin = static_cast<std::size_t>((x - lo_) / width_);
        if (bin >= counts_.size())  // guard FP edge at hi_
            bin = counts_.size() - 1;
        counts_[bin]++;
    }
}

std::uint64_t
Histogram::binCount(std::size_t bin) const
{
    QVR_REQUIRE(bin < counts_.size(), "histogram bin out of range");
    return counts_[bin];
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

double
SampleSeries::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

double
SampleSeries::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleSeries::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleSeries::percentile(double p) const
{
    QVR_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const auto n = sorted.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank > 0)
        rank--;
    if (rank >= n)
        rank = n - 1;
    return sorted[rank];
}

}  // namespace qvr
