#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace qvr
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Info};

/** Serialises record emission so concurrent experiment cells (the
 *  sim::ThreadPool workers) never interleave partial lines across the
 *  stdout/stderr sinks. */
std::mutex g_sinkMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace log_detail
{

void
emit(LogLevel level, const std::string &msg, const char *file, int line)
{
    if (level < logLevel())
        return;
    std::FILE *sink = (level >= LogLevel::Warn) ? stderr : stdout;
    std::lock_guard<std::mutex> lock(g_sinkMutex);
    std::fprintf(sink, "[%s] %s (%s:%d)\n",
                 levelName(level), msg.c_str(), file, line);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    {
        std::lock_guard<std::mutex> lock(g_sinkMutex);
        std::fprintf(stderr, "[panic] %s (%s:%d)\n",
                     msg.c_str(), file, line);
    }
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    {
        std::lock_guard<std::mutex> lock(g_sinkMutex);
        std::fprintf(stderr, "[fatal] %s (%s:%d)\n",
                     msg.c_str(), file, line);
    }
    std::exit(1);
}

}  // namespace log_detail

}  // namespace qvr
