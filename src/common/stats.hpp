/**
 * @file
 * Statistics accumulators used by every timing model and by the bench
 * harness: running mean/stddev (Welford), min/max, EWMA, fixed-bin
 * histograms and percentile estimation over retained samples.
 */

#ifndef QVR_COMMON_STATS_HPP
#define QVR_COMMON_STATS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace qvr
{

/** Running scalar summary: count, mean, variance (Welford), min, max. */
class RunningStat
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Exponentially weighted moving average, alpha in (0, 1]. */
class Ewma
{
  public:
    explicit Ewma(double alpha);

    /** Fold in a sample; the first sample initialises the average. */
    void add(double x);
    double value() const { return value_; }
    bool primed() const { return primed_; }
    void reset();

  private:
    double alpha_;
    double value_ = 0.0;
    bool primed_ = false;
};

/** Fixed-width-bin histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::uint64_t binCount(std::size_t bin) const;
    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin @p bin. */
    double binLow(std::size_t bin) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Retains samples; supports exact percentiles. Use for per-frame
 *  latency series where N is at most a few hundred thousand. */
class SampleSeries
{
  public:
    void add(double x) { samples_.push_back(x); }
    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    const std::vector<double> &samples() const { return samples_; }

    double mean() const;
    double min() const;
    double max() const;

    /** Exact percentile by nearest-rank, p in [0, 100]. */
    double percentile(double p) const;

  private:
    std::vector<double> samples_;
};

}  // namespace qvr

#endif  // QVR_COMMON_STATS_HPP
