/**
 * @file
 * Small geometric helpers: 2/3-component vectors, integer rectangles,
 * and degree/radian conversion.  Used by the foveation layer geometry,
 * motion model (6-DoF poses) and the UCA tile classifier.
 */

#ifndef QVR_COMMON_GEOMETRY_HPP
#define QVR_COMMON_GEOMETRY_HPP

#include <cmath>
#include <cstdint>

namespace qvr
{

constexpr double kPi = 3.14159265358979323846;

/** Degrees to radians. */
constexpr double
degToRad(double deg)
{
    return deg * kPi / 180.0;
}

/** Radians to degrees. */
constexpr double
radToDeg(double rad)
{
    return rad * 180.0 / kPi;
}

/** 2-component double vector (screen/angular coordinates). */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(double s) const { return {x * s, y * s}; }
    Vec2 &operator+=(const Vec2 &o) { x += o.x; y += o.y; return *this; }

    double norm() const { return std::sqrt(x * x + y * y); }

    bool
    operator==(const Vec2 &o) const
    {
        return x == o.x && y == o.y;
    }
};

/** 3-component double vector (positions, Euler angle triples). */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }

    double norm() const { return std::sqrt(x * x + y * y + z * z); }

    bool
    operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }
};

/** Axis-aligned integer rectangle, half-open [x0,x1) x [y0,y1). */
struct RectI
{
    std::int32_t x0 = 0;
    std::int32_t y0 = 0;
    std::int32_t x1 = 0;
    std::int32_t y1 = 0;

    std::int32_t width() const { return x1 - x0; }
    std::int32_t height() const { return y1 - y0; }
    std::int64_t
    area() const
    {
        return static_cast<std::int64_t>(width()) * height();
    }
    bool empty() const { return x1 <= x0 || y1 <= y0; }

    bool
    contains(std::int32_t px, std::int32_t py) const
    {
        return px >= x0 && px < x1 && py >= y0 && py < y1;
    }

    bool
    intersects(const RectI &o) const
    {
        return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
    }

    RectI
    intersect(const RectI &o) const
    {
        RectI r{std::max(x0, o.x0), std::max(y0, o.y0),
                std::min(x1, o.x1), std::min(y1, o.y1)};
        if (r.empty())
            return RectI{};
        return r;
    }

    bool
    operator==(const RectI &o) const
    {
        return x0 == o.x0 && y0 == o.y0 && x1 == o.x1 && y1 == o.y1;
    }
};

/** Clamp helper kept here to avoid dragging <algorithm> everywhere. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace qvr

#endif  // QVR_COMMON_GEOMETRY_HPP
