/**
 * @file
 * IEEE-754 binary16 storage type.
 *
 * LIWC's motion-to-eccentricity SRAM stores latency-gradient offsets
 * as 16-bit half-precision values (Section 4.3: 2^15 entries x 16 bit
 * ~= 64 KB).  We model that storage faithfully so the table suffers
 * the same quantisation the hardware would.
 */

#ifndef QVR_COMMON_FP16_HPP
#define QVR_COMMON_FP16_HPP

#include <cstdint>

namespace qvr
{

/** Convert a float to its nearest binary16 bit pattern
 *  (round-to-nearest-even, with overflow to infinity). */
std::uint16_t floatToHalfBits(float value);

/** Convert a binary16 bit pattern back to float (exact). */
float halfBitsToFloat(std::uint16_t bits);

/**
 * Value type wrapping a binary16 pattern.  Arithmetic happens in
 * float; every store re-quantises, as a 16-bit SRAM word would.
 */
class Half
{
  public:
    constexpr Half() = default;

    /** Quantising constructor. */
    Half(float value) : bits_(floatToHalfBits(value)) {}

    /** Widening accessor. */
    operator float() const { return halfBitsToFloat(bits_); }

    /** Raw storage pattern (for table size accounting / debugging). */
    std::uint16_t bits() const { return bits_; }

    /** Rebuild from a raw bit pattern. */
    static Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

  private:
    std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must model a 16-bit SRAM word");

}  // namespace qvr

#endif  // QVR_COMMON_FP16_HPP
