#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace qvr
{

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::speedup(double value, int precision)
{
    return num(value, precision) + "x";
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header + rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); i++)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto rule = [&os, &widths]() {
        os << '+';
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&os, &widths](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t i = 0; i < widths.size(); i++) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << ' ' << cell << std::string(widths[i] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto &row : rows_)
        emit(row);
    rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char c : cell) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    auto emit = [&os, &quote](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); i++) {
            if (i)
                os << ',';
            os << quote(cells[i]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

}  // namespace qvr
