#include "common/fp16.hpp"

#include <bit>
#include <cstring>

namespace qvr
{

namespace
{

std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsToFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

}  // namespace

std::uint16_t
floatToHalfBits(float value)
{
    const std::uint32_t f = floatBits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xffu) - 127;
    std::uint32_t mant = f & 0x007fffffu;

    if (exp == 128) {
        // Inf / NaN: keep NaN payload non-zero.
        const std::uint16_t payload = mant ? 0x0200u : 0u;
        return static_cast<std::uint16_t>(sign | 0x7c00u | payload);
    }
    if (exp > 15) {
        // Overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (exp >= -14) {
        // Normal half. Round mantissa 23 -> 10 bits, nearest-even.
        std::uint32_t half_exp = static_cast<std::uint32_t>(exp + 15) << 10;
        std::uint32_t half_mant = mant >> 13;
        const std::uint32_t rem = mant & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
            half_mant++;
            if (half_mant == 0x400u) {  // mantissa carry into exponent
                half_mant = 0;
                half_exp += 1u << 10;
                if (half_exp >= (31u << 10))
                    return static_cast<std::uint16_t>(sign | 0x7c00u);
            }
        }
        return static_cast<std::uint16_t>(sign | half_exp | half_mant);
    }
    if (exp >= -25) {
        // Subnormal half: shift in the implicit leading 1 and round.
        mant |= 0x00800000u;
        const int shift = -exp - 14 + 13;  // 14..24
        std::uint32_t half_mant = mant >> shift;
        const std::uint32_t rem_mask = (1u << shift) - 1;
        const std::uint32_t rem = mant & rem_mask;
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1u)))
            half_mant++;
        return static_cast<std::uint16_t>(sign | half_mant);
    }
    // Underflow to signed zero.
    return static_cast<std::uint16_t>(sign);
}

float
halfBitsToFloat(std::uint16_t bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u)
        << 16;
    const std::uint32_t exp = (bits >> 10) & 0x1fu;
    std::uint32_t mant = bits & 0x3ffu;

    if (exp == 31) {  // Inf / NaN
        return bitsToFloat(sign | 0x7f800000u | (mant << 13));
    }
    if (exp == 0) {
        if (mant == 0)
            return bitsToFloat(sign);  // +-0
        // Subnormal: normalise.
        int e = -1;
        do {
            mant <<= 1;
            e++;
        } while (!(mant & 0x400u));
        mant &= 0x3ffu;
        const std::uint32_t fexp =
            static_cast<std::uint32_t>(127 - 15 - e) << 23;
        return bitsToFloat(sign | fexp | (mant << 13));
    }
    const std::uint32_t fexp = (exp + 127 - 15) << 23;
    return bitsToFloat(sign | fexp | (mant << 13));
}

}  // namespace qvr
