/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic model (motion traces, channel noise, scene
 * complexity) takes an explicit Rng so experiments are reproducible
 * from a single seed and independent streams can be split without
 * correlation (PCG32 with distinct sequence constants).
 */

#ifndef QVR_COMMON_RNG_HPP
#define QVR_COMMON_RNG_HPP

#include <cstdint>

namespace qvr
{

/**
 * PCG32 (O'Neill, pcg-random.org): small, fast, statistically strong
 * enough for Monte-Carlo style system simulation.
 */
class Rng
{
  public:
    /** Seed with a state value and an (odd-ified) stream selector. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit output. */
    std::uint32_t next32();

    /** Next raw 64-bit output (two 32-bit draws). */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller with caching. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given rate (lambda > 0). */
    double exponential(double rate);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Derive an independent child generator; @p salt distinguishes
     * children split from the same parent state.
     */
    Rng split(std::uint64_t salt);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

}  // namespace qvr

#endif  // QVR_COMMON_RNG_HPP
