/**
 * @file
 * Minimal logging / error-reporting facility in the gem5 spirit:
 * fatal() for user error (bad configuration), panic() for internal
 * invariant violations, warn()/inform() for status.
 */

#ifndef QVR_COMMON_LOG_HPP
#define QVR_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace qvr
{

/** Severity of a log record. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

namespace log_detail
{

/** Emit one formatted record to stderr (Warn/Error) or stdout. */
void emit(LogLevel level, const std::string &msg,
          const char *file, int line);

/** Abort after reporting an internal invariant violation. */
[[noreturn]] void panicImpl(const std::string &msg,
                            const char *file, int line);

/** Exit(1) after reporting an unrecoverable user/configuration error. */
[[noreturn]] void fatalImpl(const std::string &msg,
                            const char *file, int line);

/** Fold a variadic pack into one string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

}  // namespace log_detail

/** Global verbosity floor; records below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

}  // namespace qvr

/** Report a condition that indicates a bug in the simulator itself. */
#define QVR_PANIC(...)                                                      \
    ::qvr::log_detail::panicImpl(                                           \
        ::qvr::log_detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Report an unrecoverable error caused by the user's configuration. */
#define QVR_FATAL(...)                                                      \
    ::qvr::log_detail::fatalImpl(                                           \
        ::qvr::log_detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Warn about suspicious but survivable conditions. */
#define QVR_WARN(...)                                                       \
    ::qvr::log_detail::emit(::qvr::LogLevel::Warn,                          \
        ::qvr::log_detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Status messages with no negative connotation. */
#define QVR_INFORM(...)                                                     \
    ::qvr::log_detail::emit(::qvr::LogLevel::Info,                          \
        ::qvr::log_detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Panic unless @p cond holds; always evaluated (not assert). */
#define QVR_REQUIRE(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            QVR_PANIC("requirement failed: " #cond " ", __VA_ARGS__);       \
        }                                                                   \
    } while (false)

#endif  // QVR_COMMON_LOG_HPP
