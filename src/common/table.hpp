/**
 * @file
 * ASCII table formatter for the benchmark harness: every bench binary
 * reproduces a paper table/figure by printing rows through this class,
 * so output stays aligned and can also be dumped as CSV.
 */

#ifndef QVR_COMMON_TABLE_HPP
#define QVR_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace qvr
{

/** Column-aligned text table with an optional title and CSV export. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row; resets nothing else. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; it may be shorter than the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format as a multiplier, e.g. "3.40x". */
    static std::string speedup(double value, int precision = 2);

    /** Convenience: format as a percentage, e.g. "85.0%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render aligned with box-drawing separators. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace qvr

#endif  // QVR_COMMON_TABLE_HPP
