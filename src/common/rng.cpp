#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"

namespace qvr
{

namespace
{
constexpr std::uint64_t kPcgMult = 6364136223846793005ULL;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    // Standard PCG32 seeding dance: advance once with the increment,
    // add the seed, advance again.
    next32();
    state_ += seed;
    next32();
}

std::uint32_t
Rng::next32()
{
    const std::uint64_t old = state_;
    state_ = old * kPcgMult + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t
Rng::next64()
{
    return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0,1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    QVR_REQUIRE(lo <= hi, "bad range [", lo, ", ", hi, "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)  // full 64-bit range
        return static_cast<std::int64_t>(next64());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = next64();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 is kept away from 0 so log() is finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    QVR_REQUIRE(rate > 0.0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split(std::uint64_t salt)
{
    const std::uint64_t child_seed = next64() ^ (salt * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t child_stream = next64() + salt;
    return Rng(child_seed, child_stream);
}

}  // namespace qvr
