/**
 * @file
 * Fundamental unit types shared by every Q-VR subsystem.
 *
 * The simulator mixes three time domains: wall-clock seconds (latency
 * budgets such as the 25 ms motion-to-photon bound), hardware cycles
 * (GPU and UCA timing models) and frame indices.  Keeping them in
 * distinct strong-ish types avoids the classic ms-vs-cycles bug class.
 */

#ifndef QVR_COMMON_TYPES_HPP
#define QVR_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace qvr
{

/** Hardware clock cycles (GPU, UCA, LIWC domains). */
using Cycles = std::uint64_t;

/** Wall-clock time in seconds, the canonical analog time unit. */
using Seconds = double;

/** Frequency in Hertz. */
using Hertz = double;

/** Payload sizes in bytes. */
using Bytes = std::uint64_t;

/** Bits per second, for network throughput. */
using BitsPerSecond = double;

/** Monotone frame index within a trace. */
using FrameIndex = std::uint64_t;

/** Convert milliseconds to seconds. */
constexpr Seconds
fromMs(double ms)
{
    return ms * 1e-3;
}

/** Convert seconds to milliseconds (reporting convenience). */
constexpr double
toMs(Seconds s)
{
    return s * 1e3;
}

/** Convert microseconds to seconds. */
constexpr Seconds
fromUs(double us)
{
    return us * 1e-6;
}

/** Convert megabits per second to bits per second. */
constexpr BitsPerSecond
fromMbps(double mbps)
{
    return mbps * 1e6;
}

/** Convert bits per second to megabits per second. */
constexpr double
toMbps(BitsPerSecond bps)
{
    return bps * 1e-6;
}

/** Convert a kibibyte count to bytes. */
constexpr Bytes
fromKiB(double kib)
{
    return static_cast<Bytes>(kib * 1024.0);
}

/** Convert bytes to kibibytes (reporting convenience). */
constexpr double
toKiB(Bytes b)
{
    return static_cast<double>(b) / 1024.0;
}

/** Convert megahertz to hertz. */
constexpr Hertz
fromMHz(double mhz)
{
    return mhz * 1e6;
}

/** Seconds taken by @p cycles at clock frequency @p freq. */
constexpr Seconds
cyclesToSeconds(Cycles cycles, Hertz freq)
{
    return static_cast<double>(cycles) / freq;
}

/** Cycles elapsed during @p s seconds at clock frequency @p freq
 *  (rounded up: a partially used cycle is a used cycle). */
constexpr Cycles
secondsToCycles(Seconds s, Hertz freq)
{
    const double raw = s * freq;
    const auto whole = static_cast<Cycles>(raw);
    return (static_cast<double>(whole) < raw) ? whole + 1 : whole;
}

/** Sentinel for "no latency bound". */
constexpr Seconds kNoDeadline = std::numeric_limits<Seconds>::infinity();

/**
 * Commercial mobile-VR realtime requirements quoted throughout the
 * paper (Section 2.1): motion-to-photon < 25 ms, frame rate > 90 Hz.
 */
namespace vr_requirements
{
constexpr Seconds kMaxMotionToPhoton = 25e-3;
constexpr double kMinFrameRate = 90.0;
constexpr Seconds kFrameBudget = 1.0 / kMinFrameRate;  // ~11.1 ms
}  // namespace vr_requirements

}  // namespace qvr

#endif  // QVR_COMMON_TYPES_HPP
