/**
 * @file
 * Scenario: perceptual QA of the foveated composition path.
 *
 * Reproduces the spirit of the paper's Section 3.1 user survey
 * without human subjects: for a sweep of eccentricities it
 *  (a) audits the MAR constraint analytically (worst margin, MOS),
 *  (b) renders a synthetic frame through BOTH composition paths —
 *      the sequential GPU kernels (Eq. 3) and the UCA unified
 *      trilinear pass (Eq. 4) — and reports the pixel difference,
 * demonstrating that the hardware reordering does not change the
 * image it shows the user.
 */

#include <cmath>
#include <cstdio>

#include "core/foveated_render.hpp"
#include "core/uca.hpp"
#include "foveation/quality.hpp"

namespace
{

using namespace qvr;

core::Image
makeScene(std::int32_t w, std::int32_t h)
{
    core::Image img(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            const double fx = x + 0.5;
            const double fy = y + 0.5;
            img.at(x, y) = core::Rgb{
                static_cast<float>(
                    0.5 + 0.5 * std::sin(fx * 0.13) *
                              std::cos(fy * 0.045)),
                static_cast<float>(
                    0.5 + 0.5 * std::sin((fx + fy) * 0.02)),
                static_cast<float>(
                    0.5 + 0.5 * std::cos(fx * 0.07))};
        }
    }
    return img;
}

core::Image
downsample(const core::Image &src, double s)
{
    const auto w =
        std::max(1, static_cast<std::int32_t>(src.width() / s));
    const auto h =
        std::max(1, static_cast<std::int32_t>(src.height() / s));
    core::Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            out.at(x, y) = src.sampleBilinear((x + 0.5) * s,
                                              (y + 0.5) * s);
        }
    }
    return out;
}

}  // namespace

int
main()
{
    const foveation::DisplayConfig display;
    const foveation::MarModel mar;
    const foveation::LayerGeometry geometry(display, mar);

    std::printf("(a) Analytic MAR audit (display %dx%d, %.1f ppd)\n\n",
                display.width, display.height,
                display.pixelsPerDegree());
    std::printf("  e1(deg)  e2*(deg)  s_mid  s_out  worst margin"
                "(deg)  lossless  MOS\n");
    for (double e1 : {5.0, 10.0, 15.0, 25.0, 40.0}) {
        foveation::LayerPartition p;
        p.e1 = e1;
        p.e2 = geometry.selectOptimalE2(e1, Vec2{});
        const auto px = geometry.pixelCounts(p);
        const auto audit = foveation::auditPartition(geometry, p);
        std::printf("  %5.0f    %5.1f    %4.2f   %4.2f   %13.4f"
                    "   %s   %4.1f\n",
                    e1, p.e2, px.middleFactor, px.outerFactor,
                    audit.worstMarginDeg,
                    audit.perceptuallyLossless ? "   yes  " : "   NO   ",
                    audit.meanOpinionScore);
    }

    std::printf("\n(b) Sequential (Eq.3) vs unified UCA (Eq.4) on"
                " real pixels (192x192 crop)\n\n");
    const core::Image native = makeScene(192, 192);
    std::printf("  shift(px)  mean |diff|   max |diff|   (8-bit LSB"
                " = 0.0039)\n");
    for (double shift : {0.0, 1.3, 3.7}) {
        core::UcaFrameInputs in;
        const core::Image middle = downsample(native, 2.0);
        const core::Image outer = downsample(native, 2.0);
        in.fovea = &native;
        in.middle = &middle;
        in.outer = &outer;
        in.sMiddle = 2.0;
        in.sOuter = 2.0;
        in.partition.centerX = 96.0;
        in.partition.centerY = 96.0;
        in.partition.foveaRadius = 40.0;
        in.partition.middleRadius = 75.0;
        in.atwShift = Vec2{shift, -shift / 2.0};

        const core::Image seq = core::sequentialCompositeAtw(in);
        const core::Image uni = core::ucaUnified(in);
        std::printf("  %8.1f  %10.5f   %10.5f\n", shift,
                    seq.meanAbsDiff(uni), seq.maxAbsDiff(uni));
    }

    std::printf("\nReading: partitions produced by the MAR model stay"
                " perceptually lossless,\nand the unified trilinear"
                " pass differs from the two-kernel reference by less"
                "\nthan a display LSB on average — the reordering is"
                " invisible.\n");

    // (c) See it with your own eyes: a real scene rendered natively
    // and through the foveated path, written as PPM images.
    const auto scene = core::testscene::chessHall(384, 384, 20, 8.0);
    core::PixelPartition pp;
    pp.centerX = 192.0;
    pp.centerY = 192.0;
    pp.foveaRadius = 70.0;
    pp.middleRadius = 140.0;
    const core::FoveatedRenderResult fr =
        core::renderFoveated(scene, 384, 384, pp, 2.0, 3.0);
    fr.native.writePpm("/tmp/qvr_native.ppm");
    fr.composite.writePpm("/tmp/qvr_foveated.ppm");
    std::printf("\n(c) Wrote /tmp/qvr_native.ppm and"
                " /tmp/qvr_foveated.ppm (PSNR overall %.1f dB,"
                " fovea %s dB)\n",
                fr.psnrOverall,
                std::isinf(fr.psnrFovea) ? "inf" : "finite");
    return 0;
}
