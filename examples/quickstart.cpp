/**
 * @file
 * Quickstart: the five-minute tour of the Q-VR library.
 *
 * 1. Pick an application from the benchmark catalog.
 * 2. Generate a motion trace and its per-frame rendering workload.
 * 3. Run the full Q-VR system (LIWC + UCA) over it.
 * 4. Read back the per-frame partition decisions and the latency /
 *    bandwidth / energy accounting.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/qvr_system.hpp"

int
main()
{
    using namespace qvr;

    // --- 1. Configure: GRID on the default SoC over Wi-Fi. --------
    core::ExperimentSpec spec;
    spec.benchmark = "GRID";
    spec.channel = net::ChannelConfig::wifi();
    spec.numFrames = 240;

    // --- 2. Workload: seeded head/gaze trace -> per-frame batches. -
    const auto workload = core::generateExperimentWorkload(spec);

    // --- 3. The system under test. ---------------------------------
    core::QvrSystem system(spec.toConfig());

    // --- 4. Stream frames through it. -------------------------------
    std::printf("frame   e1(deg)  e2(deg)  MTP(ms)  local(ms)  "
                "remote(ms)  sent(KB)\n");
    double mtp_sum = 0.0;
    double bytes_sum = 0.0;
    for (const auto &frame : workload) {
        const core::QvrFrameOutput out = system.renderFrame(frame);
        mtp_sum += out.stats.mtpLatency;
        bytes_sum += static_cast<double>(out.stats.transmittedBytes);
        if (frame.index % 30 == 0) {
            std::printf("%5llu   %6.1f   %6.1f   %6.2f   %8.2f   "
                        "%9.2f   %7.1f\n",
                        static_cast<unsigned long long>(frame.index),
                        out.e1, out.e2, toMs(out.stats.mtpLatency),
                        toMs(out.stats.tLocalRender),
                        toMs(out.stats.tRemoteBranch),
                        toKiB(out.stats.transmittedBytes));
        }
    }

    const double n = static_cast<double>(workload.size());
    std::printf("\nsummary: mean MTP %.2f ms (budget 25 ms), "
                "mean downlink %.0f KB/frame\n",
                toMs(mtp_sum / n), bytes_sum / n / 1024.0);
    std::printf("The controller starts at the classic 5-degree fovea"
                " and widens it\nuntil local rendering and the remote"
                " fetch balance.\n");
    return 0;
}
