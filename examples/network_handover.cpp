/**
 * @file
 * Scenario: mid-session network degradation and recovery.
 *
 * The user plays over Wi-Fi; at frame 200 they walk away from the
 * access point (downlink collapses from 200 Mbps to 40 Mbps) and at
 * frame 400 coverage recovers.  Q-VR's whole premise is that the
 * partition must *follow* the environment: watch LIWC shrink the
 * remote share (larger e1 -> more local work) while the link is bad
 * and hand work back to the server afterwards, keeping the
 * motion-to-photon latency inside budget throughout.
 *
 * This models the paper's "different network conditions available to
 * users" motivation (Section 2.2) as a live event rather than a
 * static sweep.
 */

#include <cstdio>

#include "core/pipeline_foveated.hpp"
#include "core/qvr_system.hpp"

int
main()
{
    using namespace qvr;

    core::ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = 600;
    const auto workload = core::generateExperimentWorkload(spec);

    core::FoveatedPipeline qvr(spec.toConfig(),
                               core::FoveatedPolicy::qvr());

    constexpr std::size_t kDegradeAt = 200;
    constexpr std::size_t kRecoverAt = 400;

    std::printf("phase        frames     mean e1   mean MTP(ms)  "
                ">25ms frames\n");

    struct Phase
    {
        const char *name;
        std::size_t from;
        std::size_t to;
        double e1_sum = 0.0;
        double mtp_sum = 0.0;
        std::size_t over = 0;
        std::size_t n = 0;
    };
    Phase phases[] = {
        {"wifi-good", 50, kDegradeAt},          // skip warm-up
        {"degraded", kDegradeAt + 50, kRecoverAt},
        {"recovered", kRecoverAt + 50, spec.numFrames},
    };

    for (const auto &frame : workload) {
        if (frame.index == kDegradeAt)
            qvr.channel().setNominalDownlink(fromMbps(40.0));
        if (frame.index == kRecoverAt)
            qvr.channel().setNominalDownlink(fromMbps(200.0));

        const core::FrameStats s = qvr.step(frame);
        for (Phase &p : phases) {
            if (frame.index >= p.from && frame.index < p.to) {
                p.e1_sum += s.e1;
                p.mtp_sum += s.mtpLatency;
                p.over += s.mtpLatency > 25e-3 ? 1 : 0;
                p.n++;
            }
        }
    }

    for (const Phase &p : phases) {
        const double n = static_cast<double>(p.n);
        std::printf("%-12s %3zu-%-3zu   %7.1f   %10.2f   %6zu/%zu\n",
                    p.name, p.from, p.to, p.e1_sum / n,
                    toMs(p.mtp_sum / n), p.over, p.n);
    }

    std::printf("\nExpected shape: e1 grows while the link is"
                " degraded (work moves on-device),\nthen shrinks"
                " again once bandwidth returns — no manual"
                " reconfiguration.\n");
    return 0;
}
