/**
 * @file
 * Scenario: design-space exploration for a fixed deployment.
 *
 * A platform team wants to ship collaborative foveated rendering but
 * is debating whether a *fixed* eccentricity tuned offline would be
 * good enough (no LIWC silicon).  This example sweeps fixed e1
 * values for one title/network, prints the latency-energy frontier,
 * and then shows where the LIWC-chosen operating point lands —
 * including what happens when the scene is heavier than the value
 * the fixed point was tuned for (the paper's Challenge I).
 */

#include <cstdio>

#include "core/pipeline_foveated.hpp"
#include "core/qvr_system.hpp"

namespace
{

using namespace qvr;

core::PipelineResult
runFixed(const core::ExperimentSpec &spec, double e1)
{
    core::FoveatedPolicy policy = core::FoveatedPolicy::qvr();
    policy.eccentricity = core::EccentricityPolicy::Fixed;
    policy.fixedE1 = e1;
    core::FoveatedPipeline p(spec.toConfig(), policy);
    return p.run(core::generateExperimentWorkload(spec));
}

}  // namespace

int
main()
{
    core::ExperimentSpec spec;
    spec.benchmark = "UT3";
    spec.numFrames = 240;

    std::printf("Fixed-e1 sweep on %s (Wi-Fi, 500 MHz):\n\n",
                spec.benchmark.c_str());
    std::printf("  e1(deg)   MTP(ms)   FPS     energy(mJ/frame)   "
                "downlink(KB/frame)\n");

    double best_fixed_mtp = 1e9;
    double best_fixed_e1 = 0.0;
    for (double e1 : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0}) {
        const auto r = runFixed(spec, e1);
        if (r.meanMtp() < best_fixed_mtp) {
            best_fixed_mtp = r.meanMtp();
            best_fixed_e1 = e1;
        }
        std::printf("  %5.0f    %7.2f   %5.1f   %12.1f   %14.0f\n",
                    e1, toMs(r.meanMtp()), r.meanFps(),
                    r.meanEnergy() * 1e3,
                    r.meanTransmittedBytes() / 1024.0);
    }

    core::FoveatedPipeline adaptive(spec.toConfig(),
                                    core::FoveatedPolicy::qvr());
    const auto qvr =
        adaptive.run(core::generateExperimentWorkload(spec));
    std::printf("\nLIWC (adaptive): mean e1 %.1f deg, MTP %.2f ms, "
                "FPS %.1f\n",
                qvr.meanE1(), toMs(qvr.meanMtp()), qvr.meanFps());
    std::printf("Best fixed point offline: e1 = %.0f deg "
                "(MTP %.2f ms)\n",
                best_fixed_e1, toMs(best_fixed_mtp));

    // Challenge I: ship that fixed point, then the user loads a
    // heavier title.
    core::ExperimentSpec heavy = spec;
    heavy.benchmark = "GRID";
    const auto fixed_on_heavy = runFixed(heavy, best_fixed_e1);
    core::FoveatedPipeline adaptive_heavy(heavy.toConfig(),
                                          core::FoveatedPolicy::qvr());
    const auto qvr_on_heavy =
        adaptive_heavy.run(core::generateExperimentWorkload(heavy));

    std::printf("\nSame fixed point on GRID (heavier): MTP %.2f ms,"
                " FPS %.1f\n",
                toMs(fixed_on_heavy.meanMtp()),
                fixed_on_heavy.meanFps());
    std::printf("LIWC on GRID:                        MTP %.2f ms,"
                " FPS %.1f (e1 %.1f)\n",
                toMs(qvr_on_heavy.meanMtp()), qvr_on_heavy.meanFps(),
                qvr_on_heavy.meanE1());
    std::printf("\nThe offline-tuned point is only optimal for the"
                " scene it was tuned on;\nthe controller re-finds the"
                " balance per title (and per frame).\n");
    return 0;
}
