/**
 * @file
 * Scenario: a shared VR arena on one edge server.
 *
 * Six players join the same HL2-H session through one edge server
 * (16 chiplets, 1 Gbps egress), but with heterogeneous last-mile
 * links: four on good Wi-Fi, one on early 5G, one stuck on 4G LTE.
 * Q-VR runs per user — each LIWC independently finds the partition
 * its own link and SoC can sustain — and the session report shows
 * how the system absorbs the heterogeneity instead of dragging every
 * player down to the worst link.
 */

#include <cstdio>

#include "collab/session.hpp"

int
main()
{
    using namespace qvr;

    std::printf("Six-player arena, homogeneous Wi-Fi baseline:\n\n");

    collab::SessionConfig cfg;
    cfg.users = 6;
    cfg.benchmark = "HL2-H";
    cfg.design = collab::SessionDesign::Qvr;
    cfg.numFrames = 200;

    const collab::SessionResult wifi = collab::runSession(cfg);
    std::printf("  user   mean FPS   mean MTP(ms)   mean e1(deg)\n");
    for (std::size_t i = 0; i < wifi.perUser.size(); i++) {
        const auto &u = wifi.perUser[i];
        std::printf("  %4zu   %8.1f   %12.2f   %12.1f\n", i,
                    u.meanFps(), toMs(u.meanMtp()), u.meanE1());
    }
    std::printf("  egress %.0f%%, chiplet pool %.0f%% utilised\n\n",
                wifi.egressUtilisation * 100.0,
                wifi.serverUtilisation * 100.0);

    // Heterogeneous links: run per-link-class sessions and compare
    // the per-user outcome each class would see at the same load.
    std::printf("Per-link-class outcome at the same server load:\n\n");
    std::printf("  link       mean FPS   mean MTP(ms)   mean e1"
                "(deg)\n");
    struct Link
    {
        const char *name;
        net::ChannelConfig cfg;
    };
    const Link links[] = {
        {"Wi-Fi", net::ChannelConfig::wifi()},
        {"5G", net::ChannelConfig::early5g()},
        {"4G LTE", net::ChannelConfig::lte4g()},
    };
    for (const Link &link : links) {
        collab::SessionConfig c = cfg;
        c.lastMile = link.cfg;
        const collab::SessionResult r = collab::runSession(c);
        std::printf("  %-8s   %8.1f   %12.2f   %12.1f\n", link.name,
                    r.meanFps(), toMs(r.meanMtp()),
                    r.perUser.front().meanE1());
    }

    std::printf("\nReading: the LTE player's controller pushes far"
                " more work onto their own\nSoC (bigger e1) to ride"
                " out the slow link; Wi-Fi and 5G players keep"
                " small\nfoveas and lean on the server. Nobody"
                " reconfigures anything.\n");
    return 0;
}
