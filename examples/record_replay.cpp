/**
 * @file
 * Scenario: record once, replay everywhere.
 *
 * Performance work needs reproducible inputs: record a session's
 * workload trace (motion + per-frame draw batches) to a file, then
 * replay the identical trace against two design points and — because
 * the trace pins every input — attribute the entire difference to
 * the designs themselves.  Also demonstrates LIWC warm-starting: the
 * controller's learned table is saved after the first run and
 * restored before the second, skipping the cold-start imbalance.
 */

#include <cstdio>
#include <fstream>

#include "core/pipeline_foveated.hpp"
#include "core/qvr_system.hpp"
#include "scene/trace_io.hpp"

int
main()
{
    using namespace qvr;

    const char *trace_path = "/tmp/qvr_session.trace";
    const char *table_path = "/tmp/qvr_liwc.table";

    // --- Record ----------------------------------------------------
    core::ExperimentSpec spec;
    spec.benchmark = "UT3";
    spec.numFrames = 240;
    const auto workload = core::generateExperimentWorkload(spec);
    scene::saveTrace(trace_path, workload);
    std::printf("recorded %zu frames (%zu draw batches/frame) to %s\n",
                workload.size(), workload.front().batches.size(),
                trace_path);

    // --- Replay against two designs --------------------------------
    const auto replayed = scene::loadTrace(trace_path);

    auto dfr = core::makePipeline(core::DesignPoint::Dfr,
                                  spec.toConfig());
    const auto dfr_result = dfr->run(replayed);

    core::FoveatedPipeline qvr(spec.toConfig(),
                               core::FoveatedPolicy::qvr());
    const auto qvr_result = qvr.run(replayed);

    std::printf("\nidentical inputs, two designs:\n");
    std::printf("  %-6s  MTP %6.2f ms   FPS %6.1f\n", "DFR",
                toMs(dfr_result.meanMtp()), dfr_result.meanFps());
    std::printf("  %-6s  MTP %6.2f ms   FPS %6.1f\n", "Q-VR",
                toMs(qvr_result.meanMtp()), qvr_result.meanFps());

    // --- Warm start ------------------------------------------------
    {
        std::ofstream os(table_path, std::ios::binary);
        qvr.liwc()->saveTable(os);
    }

    core::FoveatedPipeline cold(spec.toConfig(),
                                core::FoveatedPolicy::qvr());
    core::FoveatedPipeline warm(spec.toConfig(),
                                core::FoveatedPolicy::qvr());
    {
        std::ifstream is(table_path, std::ios::binary);
        warm.liwc()->loadTable(is);
    }

    auto early_mtp = [&](core::FoveatedPipeline &p) {
        double sum = 0.0;
        for (std::size_t i = 0; i < 20; i++)
            sum += p.step(replayed[i]).mtpLatency;
        return toMs(sum / 20.0);
    };
    std::printf("\nfirst-20-frame MTP, cold vs warm-started LIWC "
                "table:\n");
    std::printf("  cold: %.2f ms    warm: %.2f ms\n",
                early_mtp(cold), early_mtp(warm));
    std::printf("\n(Near-identical numbers are themselves a finding,"
                " matching the LIWC\nablation: the Eq.-2 hardware"
                " predictor carries most of the signal and the\n"
                "table's learned residuals only matter under motion"
                " patterns the prior\nmisses. The persistence API"
                " exists for exactly that long-tail case.)\n");
    std::printf("\nThe trace file is plain text — inspect %s.\n",
                trace_path);
    return 0;
}
