/**
 * @file
 * qvr_cli — run any experiment cell from the command line.
 *
 *   qvr_cli --design Q-VR --benchmark GRID --network wifi \
 *           --frames 300 --csv run.csv
 *
 * One invocation = one (design, benchmark, environment) cell: it
 * prints the aggregate row the paper's figures are built from and
 * can dump the per-frame series as CSV for plotting.  Traces can be
 * replayed (--trace) or recorded (--save-trace) for reproducible
 * comparisons.
 *
 * --sweep fans a whole cell grid (designs, benchmarks, or their
 * product) through the parallel experiment runner; --jobs bounds the
 * worker count (default: QVR_JOBS or the core count).  Output is in
 * grid order and bit-identical for every worker count.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "collab/session.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "core/qvr_system.hpp"
#include "scene/trace_io.hpp"
#include "sim/parallel.hpp"

namespace
{

using namespace qvr;

void
usage()
{
    std::printf(
        "usage: qvr_cli [options]\n"
        "  --design NAME     Local | Remote | Static | FFR | DFR |\n"
        "                    SW-QVR | Q-VR           (default Q-VR)\n"
        "  --benchmark NAME  Table-3/Table-1 catalog entry\n"
        "                                            (default GRID)\n"
        "  --network NAME    wifi | lte | 5g         (default wifi)\n"
        "  --freq MHZ        500 | 400 | 300         (default 500)\n"
        "  --frames N        frames to simulate      (default 300)\n"
        "  --seed N          experiment seed         (default 1)\n"
        "  --csv PATH        dump the per-frame series as CSV\n"
        "  --trace PATH      replay a recorded workload trace\n"
        "  --save-trace PATH record the workload trace\n"
        "  --sweep MODE      designs | benchmarks | grid | fleet |\n"
        "                    openloop: run the whole cell grid in\n"
        "                    parallel (fleet = serving policies x\n"
        "                    user counts on the edge-serving session\n"
        "                    model; openloop = balancer x shard cells\n"
        "                    under MMPP flash-crowd arrivals)\n"
        "  --jobs N          sweep worker threads (default: QVR_JOBS\n"
        "                    env var, else the core count)\n"
        "  --list            list designs and benchmarks\n"
        "  --help            this text\n");
}

const std::map<std::string, core::DesignPoint> &
designs()
{
    static const std::map<std::string, core::DesignPoint> m = {
        {"Local", core::DesignPoint::Local},
        {"Remote", core::DesignPoint::Remote},
        {"Static", core::DesignPoint::Static},
        {"FFR", core::DesignPoint::Ffr},
        {"DFR", core::DesignPoint::Dfr},
        {"SW-QVR", core::DesignPoint::SwQvr},
        {"Q-VR", core::DesignPoint::Qvr},
        {"Q-VR+CL", core::DesignPoint::QvrCompressed},
        {"Q-VR-R", core::DesignPoint::Resilient},
    };
    return m;
}

void
list()
{
    std::printf("designs:");
    for (const auto &[name, d] : designs())
        std::printf(" %s", name.c_str());
    std::printf("\nbenchmarks (Table 3):");
    for (const auto &b : scene::table3Benchmarks())
        std::printf(" %s", b.name.c_str());
    std::printf("\napps (Table 1):");
    for (const auto &b : scene::table1Apps())
        std::printf(" \"%s\"", b.name.c_str());
    std::printf("\n");
}

int runFleetSweep(const core::ExperimentSpec &spec,
                  std::size_t jobs);
int runOpenLoopSweep(const core::ExperimentSpec &spec,
                     std::size_t jobs);

/** --sweep: run a cell grid through the parallel runner and print a
 *  comparison table, one row per cell in grid order. */
int
runSweep(const std::string &mode, const std::string &design_name,
         const core::ExperimentSpec &spec, std::size_t jobs)
{
    struct SweepCell
    {
        std::string design;
        std::string benchmark;
    };
    std::vector<SweepCell> cells;
    if (mode == "fleet")
        return runFleetSweep(spec, jobs);
    if (mode == "openloop")
        return runOpenLoopSweep(spec, jobs);
    if (mode == "designs" || mode == "grid") {
        for (const auto &[name, d] : designs()) {
            (void)d;
            if (mode == "designs") {
                cells.push_back({name, spec.benchmark});
            } else {
                for (const auto &b : scene::table3Benchmarks())
                    cells.push_back({name, b.name});
            }
        }
    } else if (mode == "benchmarks") {
        for (const auto &b : scene::table3Benchmarks())
            cells.push_back({design_name, b.name});
    } else {
        QVR_FATAL("unknown --sweep mode '", mode,
                  "' (designs | benchmarks | grid | fleet |"
                  " openloop)");
    }

    const auto results = sim::runParallel(
        cells.size(),
        [&cells, &spec](std::size_t i) {
            core::ExperimentSpec cell_spec = spec;
            cell_spec.benchmark = cells[i].benchmark;
            return core::runExperiment(
                designs().at(cells[i].design), cell_spec);
        },
        jobs);

    TextTable table("Sweep: " + std::to_string(cells.size()) +
                    " cells, " + spec.channel.name + " @ " +
                    TextTable::num(spec.gpuFrequencyScale * 500.0, 0) +
                    " MHz");
    table.setHeader({"Design", "Benchmark", "MTP (ms)", "FPS",
                     ">=90Hz", "KB/frame", "mJ/frame", "e1 (deg)"});
    for (const auto &r : results) {
        table.addRow({r.design, r.benchmark,
                      TextTable::num(toMs(r.meanMtp()), 2),
                      TextTable::num(r.meanFps(), 1),
                      TextTable::percent(r.fpsCompliance()),
                      TextTable::num(
                          r.meanTransmittedBytes() / 1024.0, 0),
                      TextTable::num(r.meanEnergy() * 1e3, 1),
                      r.meanE1() > 0.0
                          ? TextTable::num(r.meanE1(), 1)
                          : std::string("-")});
    }
    table.print(std::cout);
    return 0;
}

/** --sweep fleet: serving-policy x user-count cells on the Served
 *  session model, through the same parallel runner. */
int
runFleetSweep(const core::ExperimentSpec &spec, std::size_t jobs)
{
    struct FleetCell
    {
        std::string label;
        serve::SchedulerPolicy policy;
        bool admission;
        bool batching;
        std::size_t users;
    };
    struct PolicyRow
    {
        std::string label;
        serve::SchedulerPolicy policy;
        bool admission;
        bool batching;
    };
    const std::vector<PolicyRow> policies = {
        {"fifo", serve::SchedulerPolicy::Fifo, false, false},
        {"edf", serve::SchedulerPolicy::Edf, false, false},
        {"edf+adm", serve::SchedulerPolicy::Edf, true, false},
        {"edf+adm+batch", serve::SchedulerPolicy::Edf, true, true},
    };
    std::vector<FleetCell> cells;
    for (const auto &p : policies) {
        for (const std::size_t users : {4u, 8u, 12u}) {
            cells.push_back(
                {p.label, p.policy, p.admission, p.batching, users});
        }
    }

    const auto results = sim::runParallel(
        cells.size(),
        [&cells, &spec](std::size_t i) {
            collab::SessionConfig cfg;
            cfg.design = collab::SessionDesign::Served;
            cfg.benchmark = spec.benchmark;
            cfg.numFrames = spec.numFrames;
            cfg.users = cells[i].users;
            cfg.totalChiplets = 4;
            cfg.chipletsPerRequest = 2;
            cfg.serverEgress = fromMbps(2000.0);
            cfg.serving.scheduler.policy = cells[i].policy;
            cfg.serving.admission.enabled = cells[i].admission;
            cfg.serving.batching.enabled = cells[i].batching;
            return collab::runSession(cfg);
        },
        jobs);

    TextTable table("Fleet sweep: " + std::to_string(cells.size()) +
                    " cells on " + spec.benchmark + ", " +
                    std::to_string(spec.numFrames) + " frames");
    table.setHeader({"Policy", "Users", "Worst FPS", ">=90Hz",
                     "p99 wait (ms)", "Shed", "Batched", "Misses"});
    for (std::size_t i = 0; i < cells.size(); i++) {
        const collab::SessionResult &r = results[i];
        Seconds p99 = 0.0;
        for (const auto &slo : r.perUserSlo)
            p99 = std::max(p99, slo.p99QueueWait);
        table.addRow(
            {cells[i].label, std::to_string(cells[i].users),
             TextTable::num(r.worstUserFps(), 1),
             TextTable::percent(r.fpsCompliance()),
             TextTable::num(toMs(p99), 2),
             std::to_string(r.serveCounters.shed),
             std::to_string(r.serveCounters.batchedRequests),
             std::to_string(r.serveCounters.deadlineMisses)});
    }
    table.print(std::cout);
    return 0;
}

/** --sweep openloop: balancer x shard-count cells under arrival-
 *  driven (open-loop) traffic — users connect on a seeded MMPP
 *  flash-crowd schedule, play a drawn session length, and depart —
 *  through the same parallel runner. */
int
runOpenLoopSweep(const core::ExperimentSpec &spec, std::size_t jobs)
{
    struct OpenCell
    {
        std::string label;
        serve::BalancerPolicy balancer;
        std::uint32_t shards;
    };
    struct BalancerRow
    {
        std::string label;
        serve::BalancerPolicy balancer;
    };
    const std::vector<BalancerRow> balancers = {
        {"jsq", serve::BalancerPolicy::JoinShortestQueue},
        {"bounded-ch",
         serve::BalancerPolicy::BoundedLoadConsistentHash},
        {"p2c", serve::BalancerPolicy::PowerOfTwoChoices},
        {"hash", serve::BalancerPolicy::HashUser},
    };
    std::vector<OpenCell> cells;
    for (const auto &b : balancers) {
        for (const std::uint32_t shards : {2u, 4u})
            cells.push_back({b.label, b.balancer, shards});
    }

    const auto results = sim::runParallel(
        cells.size(),
        [&cells, &spec](std::size_t i) {
            collab::SessionConfig cfg;
            cfg.design = collab::SessionDesign::Served;
            cfg.engine = collab::SessionEngine::Event;
            cfg.aggregateTelemetry = true;
            cfg.benchmark = spec.benchmark;
            cfg.users = 1;   // sized by the arrival process
            cfg.numFrames = 1;
            cfg.totalChiplets = 4 * cells[i].shards;
            cfg.chipletsPerRequest = 2;
            cfg.serverEgress =
                fromMbps(2000.0 * cells[i].shards);
            cfg.serving.shards = cells[i].shards;
            cfg.serving.balancer.policy = cells[i].balancer;
            cfg.serving.scheduler.policy =
                serve::SchedulerPolicy::Edf;
            cfg.serving.admission.enabled = true;
            cfg.seed = spec.seed;
            cfg.openLoop.enabled = true;
            cfg.openLoop.horizon = 2.0;
            core::ArrivalConfig &a = cfg.openLoop.arrivals;
            a.kind = core::ArrivalKind::Mmpp;
            const double s =
                static_cast<double>(cells[i].shards);
            a.states = {{20.0 * s, 1.0}, {100.0 * s, 0.25}};
            a.minFrames = 8;
            a.maxFrames = 24;
            a.roamRate = 0.3;
            a.seed = spec.seed;
            return collab::runSession(cfg);
        },
        jobs);

    TextTable table("Open-loop sweep: " +
                    std::to_string(cells.size()) + " cells on " +
                    spec.benchmark +
                    ", MMPP flash crowd, 2 s horizon");
    table.setHeader({"Balancer", "Shards", "Arrivals", "Peak act",
                     "Mean act", "Roams", "Shed", "Worst FPS",
                     "Misses"});
    for (std::size_t i = 0; i < cells.size(); i++) {
        const collab::SessionResult &r = results[i];
        table.addRow(
            {cells[i].label, std::to_string(cells[i].shards),
             std::to_string(r.openLoop.arrivals),
             std::to_string(r.openLoop.peakActiveUsers),
             TextTable::num(r.openLoop.meanActiveUsers, 1),
             std::to_string(r.openLoop.roams),
             std::to_string(r.serveCounters.shed),
             TextTable::num(r.worstUserFps(), 1),
             std::to_string(r.serveCounters.deadlineMisses)});
    }
    table.print(std::cout);
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string design_name = "Q-VR";
    core::ExperimentSpec spec;
    spec.benchmark = "GRID";
    std::string csv_path;
    std::string trace_path;
    std::string save_trace_path;
    std::string sweep_mode;
    std::size_t jobs = 0;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                QVR_FATAL("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            list();
            return 0;
        } else if (arg == "--design") {
            design_name = value();
        } else if (arg == "--benchmark") {
            spec.benchmark = value();
        } else if (arg == "--network") {
            const std::string n = value();
            if (n == "wifi") {
                spec.channel = net::ChannelConfig::wifi();
            } else if (n == "lte") {
                spec.channel = net::ChannelConfig::lte4g();
            } else if (n == "5g") {
                spec.channel = net::ChannelConfig::early5g();
            } else {
                QVR_FATAL("unknown network '", n,
                          "' (wifi | lte | 5g)");
            }
        } else if (arg == "--freq") {
            const double mhz = std::stod(value());
            spec.gpuFrequencyScale = mhz / 500.0;
        } else if (arg == "--frames") {
            spec.numFrames =
                static_cast<std::size_t>(std::stoul(value()));
        } else if (arg == "--seed") {
            spec.seed = std::stoull(value());
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--save-trace") {
            save_trace_path = value();
        } else if (arg == "--sweep") {
            sweep_mode = value();
        } else if (arg == "--jobs") {
            jobs = static_cast<std::size_t>(std::stoul(value()));
        } else {
            usage();
            QVR_FATAL("unknown option '", arg, "'");
        }
    }

    const auto it = designs().find(design_name);
    if (it == designs().end())
        QVR_FATAL("unknown design '", design_name, "' (see --list)");

    if (!sweep_mode.empty()) {
        if (!csv_path.empty() || !trace_path.empty() ||
            !save_trace_path.empty()) {
            QVR_FATAL("--sweep is incompatible with --csv/--trace/"
                      "--save-trace (one cell only)");
        }
        return runSweep(sweep_mode, design_name, spec, jobs);
    }

    const auto workload =
        trace_path.empty() ? core::generateExperimentWorkload(spec)
                           : scene::loadTrace(trace_path);
    if (!save_trace_path.empty())
        scene::saveTrace(save_trace_path, workload);

    auto pipeline = core::makePipeline(it->second, spec.toConfig());
    const core::PipelineResult r = pipeline->run(workload);

    std::printf("%s on %s, %s @ %.0f MHz, %zu frames\n",
                r.design.c_str(), r.benchmark.c_str(),
                spec.channel.name.c_str(),
                spec.gpuFrequencyScale * 500.0, r.frames.size());
    std::printf("  MTP      %.2f ms (mean)\n", toMs(r.meanMtp()));
    std::printf("  FPS      %.1f (mean), %.1f%% of frames >= 90 Hz\n",
                r.meanFps(), r.fpsCompliance() * 100.0);
    std::printf("  downlink %.0f KB/frame\n",
                r.meanTransmittedBytes() / 1024.0);
    std::printf("  energy   %.1f mJ/frame\n", r.meanEnergy() * 1e3);
    if (r.meanE1() > 0.0)
        std::printf("  e1       %.1f deg (mean steady)\n", r.meanE1());

    if (!csv_path.empty()) {
        TextTable csv;
        csv.setHeader({"frame", "e1_deg", "e2_deg", "mtp_ms",
                       "local_ms", "remote_ms", "net_ms", "fps",
                       "bytes", "energy_mj", "reprojected"});
        for (const auto &f : r.frames) {
            csv.addRow({std::to_string(f.index),
                        TextTable::num(f.e1, 2),
                        TextTable::num(f.e2, 2),
                        TextTable::num(toMs(f.mtpLatency), 3),
                        TextTable::num(toMs(f.tLocalRender), 3),
                        TextTable::num(toMs(f.tRemoteBranch), 3),
                        TextTable::num(toMs(f.tNetwork), 3),
                        TextTable::num(
                            f.frameInterval > 0.0
                                ? 1.0 / f.frameInterval
                                : 0.0,
                            1),
                        std::to_string(f.transmittedBytes),
                        TextTable::num(f.energy.total() * 1e3, 3),
                        f.reprojected ? "1" : "0"});
        }
        std::ofstream os(csv_path);
        if (!os)
            QVR_FATAL("cannot open '", csv_path, "'");
        csv.printCsv(os);
        std::printf("  per-frame series -> %s\n", csv_path.c_str());
    }
    return 0;
}
